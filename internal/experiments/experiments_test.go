package experiments

import (
	"reflect"
	"strings"
	"testing"

	"numabfs/internal/bfs"
	"numabfs/internal/fault"
	"numabfs/internal/graph500"
	"numabfs/internal/machine"
	"numabfs/internal/obs"
	"numabfs/internal/trace"
)

// quick returns a spec small enough for CI; shapes assertions below use
// it, so they exercise the same code paths as the full benches.
func quick() Spec { return Spec{BaseScale: 13, Roots: 2} }

func TestSpecScaling(t *testing.T) {
	s := Default()
	if s.scaleFor(1) != s.BaseScale {
		t.Fatal("one node must use the base scale")
	}
	if s.scaleFor(16) != s.BaseScale+4 {
		t.Fatalf("16 nodes -> scale %d, want base+4", s.scaleFor(16))
	}
	cfg := s.clusterConfig(4)
	if cfg.Nodes != 4 {
		t.Fatalf("nodes = %d", cfg.Nodes)
	}
	if cfg.WeakNode >= 0 {
		t.Fatal("weak node must be disabled below 16 nodes")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Name: "Fig. X", Title: "demo", Columns: []string{"a", "b"}}
	tab.AddRow("row", 1.5, 2e9)
	tab.Notes = append(tab.Notes, "a note")
	out := tab.String()
	for _, want := range []string{"Fig. X", "demo", "row", "1.500", "2.000e+09", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestFig4BandwidthShape(t *testing.T) {
	tab, err := Fig4(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(Fig4PPNs) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// More processes per node -> more aggregate bandwidth at large
	// message sizes; eight processes reach roughly the two-port peak.
	last := len(Fig4Sizes) - 1
	bw1 := tab.Rows[0].Values[last]
	bw8 := tab.Rows[3].Values[last]
	if bw8 <= bw1 {
		t.Fatalf("8 ppn (%g) not faster than 1 ppn (%g)", bw8, bw1)
	}
	if bw8 < 9.5 || bw8 > 10.5 {
		t.Fatalf("8 ppn = %g GB/s, want ~10 (2x40Gb ports)", bw8)
	}
	if frac := bw1 / bw8; frac < 0.2 || frac > 0.6 {
		t.Fatalf("1 ppn reaches %.0f%% of peak, want a clearly limited share", 100*frac)
	}
}

func TestFig6LeaderBreakdownShape(t *testing.T) {
	tab, err := Fig6(quick())
	if err != nil {
		t.Fatal(err)
	}
	// For each size the leader-based breakdown must show intra-node
	// steps (gather+bcast) dominating the inter-node exchange — the
	// paper's argument that overlap cannot hide them — and the
	// overlapped variant must improve on plain leader-based.
	var leaderTotal, overlapTotal float64
	checked := 0
	for _, row := range tab.Rows {
		switch {
		case strings.HasPrefix(row.Label, "leader-based"):
			vals := row.Values // total, gather, inter, bcast
			intra := vals[1] + vals[3]
			inter := vals[2]
			if intra <= inter {
				t.Errorf("%s: intra %g not dominating inter %g", row.Label, intra, inter)
			}
			leaderTotal = vals[0]
			checked++
		case strings.HasPrefix(row.Label, "overlapped"):
			overlapTotal = row.Values[0]
			if overlapTotal >= leaderTotal {
				t.Errorf("%s: overlap (%g) not faster than leader-based (%g)", row.Label, overlapTotal, leaderTotal)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no leader-based rows found")
	}
}

func TestFig10PolicyOrdering(t *testing.T) {
	tab, err := Fig10(quick())
	if err != nil {
		t.Fatal(err)
	}
	teps := map[string]float64{}
	for _, r := range tab.Rows {
		teps[r.Label] = r.Values[0]
	}
	// The paper's ordering: bind > interleave > noflag8 > noflag1.
	if !(teps["ppn=8.bind-to-socket"] > teps["ppn=1.interleave"]) {
		t.Errorf("bind (%g) must beat interleave (%g)", teps["ppn=8.bind-to-socket"], teps["ppn=1.interleave"])
	}
	if !(teps["ppn=1.interleave"] > teps["ppn=1.noflag"]) {
		t.Errorf("interleave (%g) must beat noflag (%g)", teps["ppn=1.interleave"], teps["ppn=1.noflag"])
	}
	if !(teps["ppn=8.bind-to-socket"] > teps["ppn=8.noflag"]) {
		t.Errorf("bind (%g) must beat unbound ppn=8 (%g)", teps["ppn=8.bind-to-socket"], teps["ppn=8.noflag"])
	}
}

func TestShareDegreeTradeoff(t *testing.T) {
	tab, err := AblationShareDegree(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want k in {1,2,4,8}", len(tab.Rows))
	}
	// Communication must not grow with the sharing degree; the modelled
	// check latency must not shrink (capacity helps but hits migrate to
	// peer caches) beyond k=1.
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i].Values[0] > tab.Rows[0].Values[0]*1.01 {
			t.Errorf("k=%d allgather (%g) above private k=1 (%g)",
				1<<i, tab.Rows[i].Values[0], tab.Rows[0].Values[0])
		}
		if tab.Rows[i].Values[1] < tab.Rows[i-1].Values[1]*0.99 {
			t.Errorf("check latency not monotone at row %d: %g < %g",
				i, tab.Rows[i].Values[1], tab.Rows[i-1].Values[1])
		}
	}
}

func TestLevelProfileShape(t *testing.T) {
	tab, err := LevelProfile(quick())
	if err != nil {
		t.Fatal(err)
	}
	// The last two rows are the bottom-up shares; both must dominate
	// (Sec. II.B: most vertices reached bottom-up, most time there).
	n := len(tab.Rows)
	buVisited := tab.Rows[n-2].Values[0]
	if buVisited < 0.5 {
		t.Errorf("bottom-up visited share %g, want the majority", buVisited)
	}
}

func TestExtCompressionShape(t *testing.T) {
	tab, err := ExtCompression(quick())
	if err != nil {
		t.Fatal(err)
	}
	// 5 TEPS rows + par/comp bu-comm + wire/raw MB + 3 segment rows.
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(tab.Rows))
	}
	rows := map[string][]float64{}
	for _, r := range tab.Rows {
		rows[r.Label] = r.Values
	}
	wireMB := rows["Compressed wire MB/root"]
	rawMB := rows["Compressed raw MB/root"]
	// The selector always has dense as a candidate, so the adaptive wire
	// volume can exceed raw only by header bytes; at 4+ nodes the sparse
	// frontier levels must yield a real reduction. (The modelled *time*
	// win needs larger segments than this quick spec produces — the unit
	// test at scale 16 covers it.)
	for i := range wireMB {
		if wireMB[i] > rawMB[i]*1.001 {
			t.Errorf("col %d: wire %g MB above raw %g MB", i, wireMB[i], rawMB[i])
		}
		if i >= 2 && wireMB[i] >= rawMB[i] {
			t.Errorf("col %d: no wire saving (%g >= %g MB)", i, wireMB[i], rawMB[i])
		}
	}
	// The adaptive selector must actually switch formats within a run.
	for i := range wireMB {
		used := 0
		for _, label := range []string{"segments dense/root", "segments sparse/root", "segments rle/root"} {
			if rows[label][i] > 0 {
				used++
			}
		}
		if i >= 1 && used < 2 {
			t.Errorf("col %d: selector used %d format(s)", i, used)
		}
	}
	if len(rows["Par allgather bu-comm (ms)"]) != 5 || len(rows["Compressed bu-comm (ms)"]) != 5 {
		t.Fatalf("bu-comm rows incomplete: %v / %v",
			rows["Par allgather bu-comm (ms)"], rows["Compressed bu-comm (ms)"])
	}
}

func TestAblationCompressionShape(t *testing.T) {
	tab, err := AblationCompression(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 selector configurations", len(tab.Rows))
	}
	// Columns: TEPS, wire MB, raw MB, bu-comm ms.
	base := tab.Rows[0] // par-allgather, no codec
	if base.Values[1] != base.Values[2] {
		t.Errorf("par-allgather wire %g != raw %g (no codec means they coincide)",
			base.Values[1], base.Values[2])
	}
	adaptive := tab.Rows[1]
	for _, r := range tab.Rows[1:] {
		// Compression never changes the logical traffic.
		if rel := r.Values[2]/base.Values[2] - 1; rel > 1e-9 || rel < -1e-9 {
			t.Errorf("%s: raw MB %g differs from baseline %g", r.Label, r.Values[2], base.Values[2])
		}
		// Every forced format and threshold rule is one of the adaptive
		// selector's candidates, so none can move fewer wire bytes.
		if r.Values[1] < adaptive.Values[1]*(1-1e-9) {
			t.Errorf("%s: wire %g MB below adaptive's %g", r.Label, r.Values[1], adaptive.Values[1])
		}
	}
	if adaptive.Values[1] >= base.Values[1] {
		t.Errorf("adaptive wire %g MB not below uncompressed %g", adaptive.Values[1], base.Values[1])
	}
}

func TestFig12CommGrowsWithNodes(t *testing.T) {
	tab, err := Fig12(quick())
	if err != nil {
		t.Fatal(err)
	}
	ppn8 := tab.Rows[1].Values
	for i := 1; i < len(ppn8); i++ {
		if ppn8[i] <= ppn8[i-1] {
			t.Fatalf("ppn=8 comm not growing: %v", ppn8)
		}
	}
	prop := tab.Rows[2].Values
	if prop[len(prop)-1] <= prop[0] {
		t.Fatalf("comm proportion not growing: %v", prop)
	}
	// ppn=8 communication costs more than ppn=1 at every point.
	ppn1 := tab.Rows[0].Values
	for i := range ppn8 {
		if ppn8[i] <= ppn1[i] {
			t.Fatalf("ppn8 comm (%g) not above ppn1 (%g) at index %d", ppn8[i], ppn1[i], i)
		}
	}
}

func TestExtFaultsShape(t *testing.T) {
	tab, err := ExtFaults(quick())
	if err != nil {
		t.Fatal(err)
	}
	// 5 degradation rows (the cumulative optimization levels) + crash row.
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	for _, r := range tab.Rows[:5] {
		if r.Values[0] != 1 {
			t.Errorf("%s: baseline column %g, want exactly 1 (self-relative)", r.Label, r.Values[0])
		}
		for i, v := range r.Values {
			if v <= 0 || v > 1.0001 {
				t.Errorf("%s col %d: retained fraction %g outside (0, 1]", r.Label, i, v)
			}
		}
		// Harsher degradation must never help.
		for i := 1; i < len(r.Values); i++ {
			if r.Values[i] > r.Values[i-1]*1.0001 {
				t.Errorf("%s: retained fraction rose under harsher degradation: %v", r.Label, r.Values)
			}
		}
	}
	crash := tab.Rows[5]
	if !strings.Contains(crash.Label, "crash") {
		t.Fatalf("last row %q is not the crash row", crash.Label)
	}
	if v := crash.Values[0]; v <= 0 || v >= 1 {
		t.Errorf("crash row retained %g, want in (0, 1): recovery costs time but completes", v)
	}
}

func TestExtLossShape(t *testing.T) {
	tab, err := ExtLoss(quick())
	if err != nil {
		t.Fatal(err)
	}
	// 5 optimization-level rows + retransmit and overhead ledger rows.
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(tab.Rows))
	}
	for _, r := range tab.Rows[:5] {
		if r.Values[0] != 1 {
			t.Errorf("%s: clean column %g, want exactly 1 (self-relative)", r.Label, r.Values[0])
		}
		for i, v := range r.Values {
			if v <= 0 || v > 1.0001 {
				t.Errorf("%s col %d: retained fraction %g outside (0, 1]", r.Label, i, v)
			}
		}
		// The protocol tax plus harsher loss must never help.
		for i := 1; i < len(r.Values); i++ {
			if r.Values[i] > r.Values[i-1]*1.0001 {
				t.Errorf("%s: retained fraction rose under harsher loss: %v", r.Label, r.Values)
			}
		}
	}
	retrans, overhead := tab.Rows[5], tab.Rows[6]
	if !strings.Contains(retrans.Label, "Retransmits") || !strings.Contains(overhead.Label, "Overhead") {
		t.Fatalf("ledger rows mislabeled: %q, %q", retrans.Label, overhead.Label)
	}
	// Clean and loss-0% columns carry no retransmissions; real loss must.
	if retrans.Values[0] != 0 || retrans.Values[1] != 0 {
		t.Errorf("retransmits without loss: %v", retrans.Values)
	}
	if last := retrans.Values[len(retrans.Values)-1]; last <= 0 {
		t.Errorf("no retransmits at the harshest rate: %v", retrans.Values)
	}
	// Protocol overhead appears as soon as the transport is on (loss 0%).
	if overhead.Values[0] != 0 || overhead.Values[1] <= 0 {
		t.Errorf("overhead columns wrong: %v", overhead.Values)
	}
}

func TestExtOverlapShape(t *testing.T) {
	s := quick()
	s.Cache = graph500.NewGraphCache() // 25 validated cells share 5 graphs
	tab, err := ExtOverlap(s)
	if err != nil {
		t.Fatal(err)
	}
	// 1 compressed TEPS row + 4 segment-count TEPS rows + 6 attribution rows.
	if len(tab.Rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(tab.Rows))
	}
	rows := map[string][]float64{}
	for _, r := range tab.Rows {
		rows[r.Label] = r.Values
	}
	hidden := rows["Overlap hidden comm (ms)"]
	eff := rows["Overlap efficiency"]
	speedup := rows["Speedup vs compressed"]
	for i := range eff {
		if eff[i] < 0 || eff[i] > 1 {
			t.Errorf("col %d: efficiency %g outside [0, 1]", i, eff[i])
		}
	}
	// With at least two nodes the pipeline must hide real transfer time.
	// At the CI scale bottom-up comm is under 1% of the traversal, so the
	// net effect is a wash — assert only that the pipelining overhead
	// stays in the noise here; the strict reduction is asserted at the
	// driver's default base scale in TestOverlapAcceptanceAtDefaultScale.
	for i := 1; i < len(hidden); i++ {
		if hidden[i] <= 0 {
			t.Errorf("col %d: no hidden communication attributed: %v", i, hidden)
		}
		if speedup[i] < 0.99 || speedup[i] > 1.5 {
			t.Errorf("col %d: speedup %g implausible for scale %d", i, speedup[i], s.BaseScale)
		}
	}
	if h, m := s.Cache.Stats(); m != 5 || h != 20 {
		t.Errorf("graph cache hits=%d misses=%d, want 20/5 (one build per node count)", h, m)
	}
}

// TestOverlapAcceptanceAtDefaultScale is the tentpole acceptance on the
// experiments' own cluster model: at the default base scale the
// pipelined level must beat the compressed level in total virtual time
// at 4 nodes, with hidden communication accounting for the gain and the
// Figs. 12/14 bottom-up communication time strictly reduced.
func TestOverlapAcceptanceAtDefaultScale(t *testing.T) {
	s := Spec{BaseScale: Default().BaseScale, Roots: 1}
	const nodes = 4
	comp := bfs.DefaultOptions()
	comp.Opt = bfs.OptCompressedAllgather
	rc, err := s.run(nodes, machine.PPN8Bind, comp)
	if err != nil {
		t.Fatal(err)
	}
	ov := bfs.DefaultOptions()
	ov.Opt = bfs.OptOverlapAllgather
	ro, err := s.run(nodes, machine.PPN8Bind, ov)
	if err != nil {
		t.Fatal(err)
	}
	if ro.MeanTimeNs >= rc.MeanTimeNs {
		t.Errorf("overlap mean time %.0f ns not below compressed %.0f ns", ro.MeanTimeNs, rc.MeanTimeNs)
	}
	if ro.Breakdown.Ns[trace.Overlap] <= 0 {
		t.Errorf("no hidden communication: %v", ro.Breakdown.Ns)
	}
	if ro.Breakdown.Ns[trace.BUComm] >= rc.Breakdown.Ns[trace.BUComm] {
		t.Errorf("exposed bu-comm %.0f ns not below compressed %.0f ns",
			ro.Breakdown.Ns[trace.BUComm], rc.Breakdown.Ns[trace.BUComm])
	}
}

func TestTimelineShape(t *testing.T) {
	s := quick()
	s.Obs = obs.NewRecorder()
	tab, err := Timeline(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (compressed, overlap)", len(tab.Rows))
	}
	if len(tab.Columns) != 7 {
		t.Fatalf("columns = %v", tab.Columns)
	}
	for _, r := range tab.Rows {
		if len(r.Values) != len(tab.Columns) {
			t.Fatalf("row %q has %d values for %d columns", r.Label, len(r.Values), len(tab.Columns))
		}
		vals := map[string]float64{}
		for i, c := range tab.Columns {
			vals[c] = r.Values[i]
		}
		if vals["TEPS"] <= 0 || vals["time ms"] <= 0 {
			t.Errorf("row %q: non-positive TEPS/time: %v", r.Label, r.Values)
		}
		// The gauge streams must have recorded real activity: the frontier
		// peaks above a single vertex, density stays a fraction, inter-node
		// traffic flows, and link utilization is a positive fraction of the
		// per-stream peak.
		if vals["peak frontier"] < 2 {
			t.Errorf("row %q: peak frontier %g — frontier gauge not sampled", r.Label, vals["peak frontier"])
		}
		if d := vals["peak density"]; d <= 0 || d > 1 {
			t.Errorf("row %q: peak density %g outside (0, 1]", r.Label, d)
		}
		if vals["inter-node MiB"] <= 0 {
			t.Errorf("row %q: no inter-node bytes sampled", r.Label)
		}
		if u := vals["peak link util"]; u <= 0 {
			t.Errorf("row %q: link utilization %g not positive", r.Label, u)
		}
	}
	// Both sessions recorded with sampling enabled, ready for obsdiff.
	sessions := s.Obs.Sessions()
	if len(sessions) != 2 {
		t.Fatalf("sessions = %d, want 2", len(sessions))
	}
	for _, sess := range sessions {
		if sess.Sampler() == nil {
			t.Errorf("session %q recorded without sampling", sess.Label)
		}
	}
	// The overlap row must attribute some exposed wait or hide the
	// transfers entirely; either way the sweep ran the pipelined level.
	if !strings.Contains(tab.Rows[1].Label, "Overlap") {
		t.Errorf("second row %q is not the overlap level", tab.Rows[1].Label)
	}
}

func TestAblationOverlapShape(t *testing.T) {
	tab, err := AblationOverlap(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Compressed baseline + 6 pinned segment counts.
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(tab.Rows))
	}
	base := tab.Rows[0] // columns: TEPS, time ms, bu-comm ms, hidden, exposed, efficiency
	if base.Values[3] != 0 || base.Values[4] != 0 || base.Values[5] != 0 {
		t.Errorf("compressed baseline reports overlap: %v", base.Values)
	}
	for _, r := range tab.Rows[1:] {
		if r.Values[3] <= 0 {
			t.Errorf("%s: no hidden communication: %v", r.Label, r.Values)
		}
		if r.Values[5] < 0 || r.Values[5] > 1 {
			t.Errorf("%s: efficiency %g outside [0, 1]", r.Label, r.Values[5])
		}
	}
}

// TestLossTransportIdentityOnFigures: a transport-tuning-only plan (no
// Loss events) applied through the Spec must leave the cluster figures
// bit-identical to running with no plan at all — the experiments-level
// face of the transport's identity guarantee.
func TestLossTransportIdentityOnFigures(t *testing.T) {
	tiny := Spec{BaseScale: 12, Roots: 1} // Fig9 weak-scales to 16 nodes; keep the doubled sweep cheap
	tuned := fault.Plan{RetransmitTimeoutNs: 5e3, RetransmitBackoff: 1.5, RetryBudget: 4}
	for _, fig := range []struct {
		name string
		run  func(Spec) (*Table, error)
	}{{"Fig9", Fig9}, {"Fig13", Fig13}, {"Fig15", Fig15}} {
		base, err := fig.run(tiny)
		if err != nil {
			t.Fatal(err)
		}
		s := tiny
		s.Faults = &tuned
		got, err := fig.run(s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("%s: tuning-only plan perturbed the table:\nbase %v\ngot  %v", fig.name, base, got)
		}
	}
}

func TestExtAvailabilityShape(t *testing.T) {
	tab, err := ExtAvailability(quick())
	if err != nil {
		t.Fatal(err)
	}
	// 5 optimization levels x 3 completion policies.
	if len(tab.Rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if len(r.Values) != 6 {
			t.Fatalf("%s: %d values, want 6", r.Label, len(r.Values))
		}
		for k := 0; k < 2; k++ {
			teps, ratio, mttr := r.Values[3*k], r.Values[3*k+1], r.Values[3*k+2]
			if teps <= 0 || teps >= 1 {
				t.Errorf("%s x%d: retained TEPS %g, want in (0, 1): recovery costs time but completes", r.Label, k+1, teps)
			}
			if ratio < 1 {
				t.Errorf("%s x%d: time ratio %g below 1 — a crash cannot speed the run up", r.Label, k+1, ratio)
			}
			if mttr <= 0 {
				t.Errorf("%s x%d: MTTR %g ms, want positive (detection latency alone is nonzero)", r.Label, k+1, mttr)
			}
		}
		// A second death costs at least as much repair and wall time. The
		// time comparison gets a small tolerance: the second recovery
		// rewinds every survivor to a synchronized checkpoint clock, which
		// can erase accumulated skew worth a fraction of a percent.
		if r.Values[4] < r.Values[1]*0.99 {
			t.Errorf("%s: time ratio fell from %g to %g with a second crash", r.Label, r.Values[1], r.Values[4])
		}
		if r.Values[5] <= r.Values[2] {
			t.Errorf("%s: MTTR fell from %g to %g ms with a second crash", r.Label, r.Values[2], r.Values[5])
		}
	}
}
