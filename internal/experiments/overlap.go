package experiments

import (
	"fmt"

	"numabfs/internal/bfs"
	"numabfs/internal/graph500"
	"numabfs/internal/machine"
	"numabfs/internal/trace"
)

// overlapSegCounts is ExtOverlap's pipeline-depth sweep: how many chunks
// each rank's in_queue segment is split into. Depth 1 degenerates to one
// transfer per ring step (overlap only across steps); deeper pipelines
// hide more transfer time behind the per-chunk decode + summary rebuild
// until the α (latency) term of the extra messages eats the gain.
var overlapSegCounts = []int{1, 2, 4, 8}

// overlapDefaultSegs mirrors the engine's default pipeline depth
// (Options.OverlapSegments = 0); the attribution rows report this
// configuration.
const overlapDefaultSegs = 2

// ExtOverlap evaluates the pipelined bottom-up allgather
// (OptOverlapAllgather) as a weak-scaling sweep over 1..16 nodes crossed
// with a pipeline-depth sweep: TEPS for the compressed baseline and for
// every segment count, then — for the engine's default depth — the
// bottom-up communication proportion of both levels (the Figs. 12/14
// curve, which the overlap flattens), the trace-attributed hidden and
// exposed communication, the per-run overlap efficiency, and the
// end-to-end speedup. Every cell runs with full Graph500 tree validation
// as the oracle: the pipeline reorders transfers and interleaves the
// summary rebuild with them, so a cell only scores if its BFS tree is
// provably correct.
func ExtOverlap(s Spec) (*Table, error) {
	nodesSweep := []int{1, 2, 4, 8, 16}
	t := &Table{
		Name:    "Ext. overlap",
		Title:   "Pipelined bottom-up allgather: overlap vs compressed, weak scaling (validated roots)",
		Columns: []string{"1 node", "2 nodes", "4 nodes", "8 nodes", "16 nodes"},
	}

	// Cells: the compressed baseline across the sweep, then each pipeline
	// depth across the sweep (segs-major, matching the sequential order).
	nN := len(nodesSweep)
	var cells []cellRun
	for _, nodes := range nodesSweep {
		nodes := nodes
		cells = append(cells, cellRun{
			label: fmt.Sprintf("compressed/%dn", nodes),
			run: func(cs Spec) (*graph500.Result, error) {
				cs.Validate = true // Graph500 tree validation is the oracle for every cell
				opts := bfs.DefaultOptions()
				opts.Opt = bfs.OptCompressedAllgather
				res, err := cs.run(nodes, machine.PPN8Bind, opts)
				if err != nil {
					return nil, fmt.Errorf("ext overlap compressed %d nodes: %w", nodes, err)
				}
				return res, nil
			},
		})
	}
	for _, segs := range overlapSegCounts {
		for _, nodes := range nodesSweep {
			segs, nodes := segs, nodes
			cells = append(cells, cellRun{
				label: fmt.Sprintf("segs=%d/%dn", segs, nodes),
				run: func(cs Spec) (*graph500.Result, error) {
					cs.Validate = true
					opts := bfs.DefaultOptions()
					opts.Opt = bfs.OptOverlapAllgather
					opts.OverlapSegments = segs
					res, err := cs.run(nodes, machine.PPN8Bind, opts)
					if err != nil {
						return nil, fmt.Errorf("ext overlap segs=%d %d nodes: %w", segs, nodes, err)
					}
					return res, nil
				},
			})
		}
	}
	results, err := s.collect("overlap", cells)
	if err != nil {
		return nil, err
	}

	compTeps := make([]float64, 0, nN)
	compTime := make([]float64, 0, nN)
	compProp := make([]float64, 0, nN)
	for i := range nodesSweep {
		res := results[i]
		compTeps = append(compTeps, res.HarmonicTEPS)
		compTime = append(compTime, res.MeanTimeNs)
		compProp = append(compProp, res.Breakdown.Proportion(trace.BUComm))
	}
	t.AddRow("+ Compressed allgather TEPS", compTeps...)

	var overProp, hiddenMs, exposedMs, eff, speedup []float64
	for si, segs := range overlapSegCounts {
		teps := make([]float64, 0, nN)
		for i := range nodesSweep {
			res := results[nN+si*nN+i]
			teps = append(teps, res.HarmonicTEPS)
			if segs == overlapDefaultSegs {
				hidden := res.Breakdown.Ns[trace.Overlap]
				exposed := res.Breakdown.OverlapExposedNs
				overProp = append(overProp, res.Breakdown.Proportion(trace.BUComm))
				hiddenMs = append(hiddenMs, hidden/1e6)
				exposedMs = append(exposedMs, exposed/1e6)
				if tot := hidden + exposed; tot > 0 {
					eff = append(eff, hidden/tot)
				} else {
					eff = append(eff, 0)
				}
				speedup = append(speedup, compTime[i]/res.MeanTimeNs)
			}
		}
		t.AddRow(fmt.Sprintf("+ Overlap segs=%d TEPS", segs), teps...)
	}
	t.AddRow("Compressed bu-comm proportion", compProp...)
	t.AddRow("Overlap bu-comm proportion", overProp...)
	t.AddRow("Overlap hidden comm (ms)", hiddenMs...)
	t.AddRow("Overlap exposed comm (ms)", exposedMs...)
	t.AddRow("Overlap efficiency", eff...)
	t.AddRow("Speedup vs compressed", speedup...)
	t.Notes = append(t.Notes,
		"every cell validates each BFS tree against the Graph500 spec — the pipeline's reordered transfers never corrupt a traversal",
		"the bu-comm proportion rows are the Figs. 12/14 curve: overlap flattens it by hiding transfers behind the per-chunk decode and summary rebuild",
		"hidden vs exposed is the trace's attribution of the pipelined collective's transfer time; efficiency = hidden / (hidden + exposed)",
		"speedup > 1 at >= 4 nodes is the tentpole acceptance: the overlap strictly reduces total virtual time where communication matters")
	return t, nil
}

// AblationOverlap ablates the pipeline depth on a fixed 4-node cluster:
// the compressed baseline against the overlapped level at pinned segment
// counts. Deeper pipelines expose less transfer time per chunk but pay
// the α latency term once per extra message — the sweep locates the
// knee; every row traverses the identical graph (the depth is a pure
// performance knob).
func AblationOverlap(s Spec) (*Table, error) {
	const nodes = 4
	scale := s.scaleFor(nodes)
	t := &Table{
		Name:    "Abl. overlap",
		Title:   fmt.Sprintf("Pipeline-depth ablation of the overlapped allgather (%d nodes, scale %d)", nodes, scale),
		Columns: []string{"TEPS", "time ms", "bu-comm ms", "hidden ms", "exposed ms", "efficiency"},
	}

	type cfg struct {
		label string
		mod   func(*bfs.Options)
	}
	cfgs := []cfg{
		{"compressed (no overlap)", func(o *bfs.Options) { o.Opt = bfs.OptCompressedAllgather }},
		{"overlap segs=1", func(o *bfs.Options) { o.OverlapSegments = 1 }},
		{"overlap segs=2 (default)", func(o *bfs.Options) { o.OverlapSegments = 2 }},
		{"overlap segs=4", func(o *bfs.Options) { o.OverlapSegments = 4 }},
		{"overlap segs=8", func(o *bfs.Options) { o.OverlapSegments = 8 }},
		{"overlap segs=16", func(o *bfs.Options) { o.OverlapSegments = 16 }},
		{"overlap segs=64", func(o *bfs.Options) { o.OverlapSegments = 64 }},
	}
	cells := make([]cellRun, len(cfgs))
	for i, c := range cfgs {
		c := c
		cells[i] = cellRun{label: c.label, run: func(cs Spec) (*graph500.Result, error) {
			opts := bfs.DefaultOptions()
			opts.Opt = bfs.OptOverlapAllgather
			c.mod(&opts)
			res, err := cs.run(nodes, machine.PPN8Bind, opts)
			if err != nil {
				return nil, fmt.Errorf("ablation overlap %s: %w", c.label, err)
			}
			return res, nil
		}}
	}
	results, err := s.collect("abl-overlap", cells)
	if err != nil {
		return nil, err
	}
	for i, c := range cfgs {
		res := results[i]
		hidden := res.Breakdown.Ns[trace.Overlap]
		exposed := res.Breakdown.OverlapExposedNs
		e := 0.0
		if tot := hidden + exposed; tot > 0 {
			e = hidden / tot
		}
		t.AddRow(c.label, res.HarmonicTEPS, res.MeanTimeNs/1e6,
			res.Breakdown.AvgBUCommNs()/1e6, hidden/1e6, exposed/1e6, e)
	}
	t.Notes = append(t.Notes,
		"every row computes the identical parent trees — pipeline depth is a pure performance knob",
		"segment counts are clamped per collective to the smallest member segment, so very deep settings converge")
	return t, nil
}
