package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"numabfs/internal/graph500"
	"numabfs/internal/obs"
)

// This file is the deterministic parallel cell runner. A figure driver
// names its cells — one benchmark configuration each — up front instead
// of running them inline; runCells farms the cells across Spec.Parallel
// host workers and commits every side effect (results, obs sessions,
// host-time ledger entries, the returned error) in submission order.
// Each cell already owns a private mpi.World and simnet.Network, so
// cells are embarrassingly parallel in host time while every virtual
//-time result stays bit-identical to the sequential schedule: the only
// cross-cell state is the graph cache (singleflight, order-independent
// counters) and the obs recorder (replaced per cell and merged in
// order).

// cell is one schedulable unit of a figure driver. run receives the
// cell's private Spec copy — its Obs recorder, when recording is on, is
// a fresh per-cell one that the runner adopts into the parent recorder
// in submission order after all cells finish.
type cell struct {
	label string
	run   func(cs Spec) error
}

// workers returns the host-parallel width: Spec.Parallel, floored at 1
// (the zero value preserves sequential behavior).
func (s Spec) workers() int {
	if s.Parallel < 1 {
		return 1
	}
	return s.Parallel
}

// runCells executes the cells at the spec's parallel width. Sequential
// mode (workers() == 1) runs in order and stops at the first error,
// exactly like the pre-runner inline loops; parallel mode runs every
// cell and returns the lowest-index error, so the error surfaced does
// not depend on host scheduling. Obs sessions and ledger entries are
// committed in cell-index order either way.
func (s Spec) runCells(fig string, cells []cell) error {
	n := len(cells)
	specs := make([]Spec, n)
	recs := make([]*obs.Recorder, n)
	errs := make([]error, n)
	hostNs := make([]int64, n)
	ran := make([]bool, n)
	for i := range cells {
		cs := s
		if s.Obs != nil {
			recs[i] = obs.NewRecorder()
			cs.Obs = recs[i]
		}
		specs[i] = cs
	}

	runOne := func(i int) {
		ran[i] = true
		t0 := time.Now()
		errs[i] = cells[i].run(specs[i])
		hostNs[i] = time.Since(t0).Nanoseconds()
	}

	if w := s.workers(); w == 1 {
		for i := range cells {
			runOne(i)
			if errs[i] != nil {
				break
			}
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		if w > n {
			w = n
		}
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					runOne(i)
				}
			}()
		}
		for i := range cells {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	// Commit side effects in submission order.
	var firstErr error
	for i := range cells {
		if !ran[i] {
			continue
		}
		if s.Ledger != nil {
			s.Ledger.add(fig, cells[i].label, hostNs[i])
		}
		if firstErr == nil && errs[i] != nil {
			firstErr = errs[i]
		}
		// Adopt even a failed cell's sessions: the sequential schedule
		// records a session before the run fails, and exports must match.
		if s.Obs != nil {
			s.Obs.Adopt(recs[i])
		}
	}
	return firstErr
}

// cellRun is a cell producing a *graph500.Result.
type cellRun struct {
	label string
	run   func(cs Spec) (*graph500.Result, error)
}

// collect runs result-producing cells and returns the results indexed by
// cell, so drivers assemble tables from completed results in declaration
// order no matter which host worker ran which cell.
func (s Spec) collect(fig string, cells []cellRun) ([]*graph500.Result, error) {
	results := make([]*graph500.Result, len(cells))
	wrapped := make([]cell, len(cells))
	for i := range cells {
		i := i
		wrapped[i] = cell{label: cells[i].label, run: func(cs Spec) error {
			r, err := cells[i].run(cs)
			results[i] = r
			return err
		}}
	}
	return results, s.runCells(fig, wrapped)
}

// CellTime is one ledger entry: the host wall-clock spent running one
// cell of one figure driver.
type CellTime struct {
	Fig    string `json:"fig"`
	Cell   string `json:"cell"`
	HostNs int64  `json:"host_ns"`
}

// Ledger accumulates per-cell host times across figure drivers. Entries
// are appended in deterministic submission order (the runner commits
// them after its barrier), so two runs of the same figure set produce
// the same entry sequence — only the HostNs values vary with the host.
type Ledger struct {
	mu    sync.Mutex
	cells []CellTime
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{} }

func (l *Ledger) add(fig, cellLabel string, hostNs int64) {
	l.mu.Lock()
	l.cells = append(l.cells, CellTime{Fig: fig, Cell: cellLabel, HostNs: hostNs})
	l.mu.Unlock()
}

// Cells returns the recorded entries in commit order.
func (l *Ledger) Cells() []CellTime {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]CellTime(nil), l.cells...)
}

// String renders the ledger as aligned text with per-fig subtotals.
func (l *Ledger) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-40s %14s\n", "fig", "cell", "host ms")
	var fig string
	var figNs, totalNs int64
	flush := func() {
		if fig != "" {
			fmt.Fprintf(&b, "%-16s %-40s %14.2f\n", fig, "(subtotal)", float64(figNs)/1e6)
		}
	}
	for _, c := range l.Cells() {
		if c.Fig != fig {
			flush()
			fig, figNs = c.Fig, 0
		}
		fmt.Fprintf(&b, "%-16s %-40s %14.2f\n", c.Fig, c.Cell, float64(c.HostNs)/1e6)
		figNs += c.HostNs
		totalNs += c.HostNs
	}
	flush()
	fmt.Fprintf(&b, "%-16s %-40s %14.2f\n", "total", "", float64(totalNs)/1e6)
	return b.String()
}
