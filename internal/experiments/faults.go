package experiments

import (
	"fmt"

	"numabfs/internal/bfs"
	"numabfs/internal/fault"
	"numabfs/internal/graph500"
	"numabfs/internal/machine"
)

// faultVariants is the five cumulative optimization levels, all at the
// paper's ppn=8 bound placement, for the degradation sweep.
func faultVariants() []variant {
	return append(ppn8Variants(),
		variant{"+ Compressed allgather", machine.PPN8Bind, bfs.OptCompressedAllgather})
}

// ExtFaults studies graceful degradation under deterministic fault
// injection (internal/fault) on a fixed 4-node cluster: one node's
// inter-node bandwidth is degraded to a sweep of factors — the
// generalization of the testbed's ill-performing node that the paper
// could only exclude from Figs. 13-14 — and every cumulative
// optimization level is rerun under each factor. Cells are TEPS
// retained relative to the same level's undegraded run, so rows compare
// directly: the closer to 1.0 under a harsh factor, the more gracefully
// that level degrades. The parallel allgather's 8-stream fan-out leans
// hardest on every node's full NIC bandwidth, so it is expected to lose
// the most; the compressed level moves fewer bytes over the degraded
// link and should retain more.
//
// A final row demonstrates crash recovery: a rank is killed mid-run at
// a virtual time chosen from the undegraded baseline, and the run
// completes through level-boundary checkpointing with a finite TEPS
// (the retained fraction includes the modelled detection timeout,
// rollback and checkpoint overhead).
func ExtFaults(s Spec) (*Table, error) {
	const nodes = 4
	const slowNode = nodes - 1
	factors := []float64{1.0, 0.8, 0.5, 0.25}
	scale := s.scaleFor(nodes)

	t := &Table{
		Name:  "Ext. faults",
		Title: fmt.Sprintf("TEPS retained under a degraded node (%d nodes, scale %d, node %d slowed)", nodes, scale, slowNode),
		Columns: []string{
			"bw x1.0", "bw x0.8", "bw x0.5", "bw x0.25",
		},
	}

	variants := faultVariants()
	var cells []cellRun
	for _, v := range variants {
		for _, f := range factors {
			v, f := v, f
			cells = append(cells, cellRun{
				label: fmt.Sprintf("%s/x%g", v.label, f),
				run: func(cs Spec) (*graph500.Result, error) {
					opts := bfs.DefaultOptions()
					opts.Opt = v.opt
					if f != 1 {
						plan := fault.WeakNode(slowNode, f)
						cs.Faults = &plan
					} else {
						cs.Faults = nil
					}
					res, err := cs.run(nodes, v.policy, opts)
					if err != nil {
						return nil, fmt.Errorf("ext faults %s factor %g: %w", v.label, f, err)
					}
					return res, nil
				},
			})
		}
	}
	results, err := s.collect("faults", cells)
	if err != nil {
		return nil, err
	}

	var base *graph500.Result // undegraded hybrid run for the crash row
	for i, v := range variants {
		baseline := results[i*len(factors)].HarmonicTEPS
		if v.opt == bfs.OptParAllgather {
			base = results[i*len(factors)]
		}
		retained := make([]float64, 0, len(factors))
		for j := range factors {
			retained = append(retained, results[i*len(factors)+j].HarmonicTEPS/baseline)
		}
		t.AddRow(v.label, retained...)
	}

	// Crash-recovery demonstration: kill rank 0 halfway through the
	// mean iteration of the undegraded parallel-allgather run. The
	// crash time is derived from modelled (virtual) time, so the row is
	// as deterministic as every other. Its plan depends on the sweep's
	// baseline result, so it is a second (single-cell) batch.
	plan := fault.Plan{Crashes: []fault.Crash{{Rank: 0, AtNs: 0.5 * base.MeanTimeNs}}}
	crash, err := s.collect("faults", []cellRun{{label: "crash", run: func(cs Spec) (*graph500.Result, error) {
		crashOpts := bfs.DefaultOptions()
		crashOpts.Opt = bfs.OptParAllgather
		cs.Faults = &plan
		res, err := cs.run(nodes, machine.PPN8Bind, crashOpts)
		if err != nil {
			return nil, fmt.Errorf("ext faults crash row: %w", err)
		}
		return res, nil
	}}})
	if err != nil {
		return nil, err
	}
	res := crash[0]
	if res.Faults == 0 {
		return nil, fmt.Errorf("ext faults: scheduled crash at %.0f ns never fired", plan.Crashes[0].AtNs)
	}
	t.AddRow("Par allgather, rank crash", res.HarmonicTEPS/base.HarmonicTEPS, 0, 0, 0)

	t.Notes = append(t.Notes,
		"cells are harmonic-TEPS retained vs the same optimization level at full bandwidth (column 1 is 1.0 by construction)",
		"the crash row kills rank 0 mid-iteration; the run completes via level-boundary checkpoint recovery (first column only)",
		fmt.Sprintf("crash row survived %d crash(es); retained fraction includes detection timeout, rollback and checkpoint overhead", res.Faults))
	return t, nil
}
