package experiments

import (
	"fmt"

	"numabfs/internal/bfs"
	"numabfs/internal/fault"
	"numabfs/internal/graph500"
	"numabfs/internal/machine"
)

// faultVariants is the five cumulative optimization levels, all at the
// paper's ppn=8 bound placement, for the degradation sweep.
func faultVariants() []variant {
	return append(ppn8Variants(),
		variant{"+ Compressed allgather", machine.PPN8Bind, bfs.OptCompressedAllgather})
}

// ExtFaults studies graceful degradation under deterministic fault
// injection (internal/fault) on a fixed 4-node cluster: one node's
// inter-node bandwidth is degraded to a sweep of factors — the
// generalization of the testbed's ill-performing node that the paper
// could only exclude from Figs. 13-14 — and every cumulative
// optimization level is rerun under each factor. Cells are TEPS
// retained relative to the same level's undegraded run, so rows compare
// directly: the closer to 1.0 under a harsh factor, the more gracefully
// that level degrades. The parallel allgather's 8-stream fan-out leans
// hardest on every node's full NIC bandwidth, so it is expected to lose
// the most; the compressed level moves fewer bytes over the degraded
// link and should retain more.
//
// A final row demonstrates crash recovery: a rank is killed mid-run at
// a virtual time chosen from the undegraded baseline, and the run
// completes through level-boundary checkpointing with a finite TEPS
// (the retained fraction includes the modelled detection timeout,
// rollback and checkpoint overhead).
func ExtFaults(s Spec) (*Table, error) {
	const nodes = 4
	const slowNode = nodes - 1
	factors := []float64{1.0, 0.8, 0.5, 0.25}
	scale := s.scaleFor(nodes)

	t := &Table{
		Name:  "Ext. faults",
		Title: fmt.Sprintf("TEPS retained under a degraded node (%d nodes, scale %d, node %d slowed)", nodes, scale, slowNode),
		Columns: []string{
			"bw x1.0", "bw x0.8", "bw x0.5", "bw x0.25",
		},
	}

	var base *graph500.Result // undegraded hybrid run for the crash row
	for _, v := range faultVariants() {
		opts := bfs.DefaultOptions()
		opts.Opt = v.opt
		var baseline float64
		retained := make([]float64, 0, len(factors))
		for _, f := range factors {
			fs := s
			if f != 1 {
				plan := fault.WeakNode(slowNode, f)
				fs.Faults = &plan
			} else {
				fs.Faults = nil
			}
			res, err := fs.run(nodes, v.policy, opts)
			if err != nil {
				return nil, fmt.Errorf("ext faults %s factor %g: %w", v.label, f, err)
			}
			if f == 1 {
				baseline = res.HarmonicTEPS
				if v.opt == bfs.OptParAllgather {
					base = res
				}
			}
			retained = append(retained, res.HarmonicTEPS/baseline)
		}
		t.AddRow(v.label, retained...)
	}

	// Crash-recovery demonstration: kill rank 0 halfway through the
	// mean iteration of the undegraded parallel-allgather run. The
	// crash time is derived from modelled (virtual) time, so the row is
	// as deterministic as every other.
	crashOpts := bfs.DefaultOptions()
	crashOpts.Opt = bfs.OptParAllgather
	plan := fault.Plan{Crashes: []fault.Crash{{Rank: 0, AtNs: 0.5 * base.MeanTimeNs}}}
	fs := s
	fs.Faults = &plan
	res, err := fs.run(nodes, machine.PPN8Bind, crashOpts)
	if err != nil {
		return nil, fmt.Errorf("ext faults crash row: %w", err)
	}
	if res.Faults == 0 {
		return nil, fmt.Errorf("ext faults: scheduled crash at %.0f ns never fired", plan.Crashes[0].AtNs)
	}
	t.AddRow("Par allgather, rank crash", res.HarmonicTEPS/base.HarmonicTEPS, 0, 0, 0)

	t.Notes = append(t.Notes,
		"cells are harmonic-TEPS retained vs the same optimization level at full bandwidth (column 1 is 1.0 by construction)",
		"the crash row kills rank 0 mid-iteration; the run completes via level-boundary checkpoint recovery (first column only)",
		fmt.Sprintf("crash row survived %d crash(es); retained fraction includes detection timeout, rollback and checkpoint overhead", res.Faults))
	return t, nil
}
