package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"numabfs/internal/bfs"
	"numabfs/internal/fault"
	"numabfs/internal/graph500"
	"numabfs/internal/machine"
	"numabfs/internal/obs"
)

// runFig10At runs Fig10 at the given parallel width with a fresh
// recorder, cache and ledger, returning everything a caller might want
// to compare across widths.
func runFig10At(t *testing.T, parallel int) (*Table, *obs.Recorder, *Ledger) {
	t.Helper()
	s := quick()
	s.Parallel = parallel
	s.Obs = obs.NewRecorder()
	s.Cache = graph500.NewGraphCache()
	s.Ledger = NewLedger()
	tab, err := Fig10(s)
	if err != nil {
		t.Fatalf("parallel=%d: %v", parallel, err)
	}
	return tab, s.Obs, s.Ledger
}

// TestParallelRunnerDeterministic is the tentpole acceptance: a figure
// driver run at -parallel 8 must be byte-identical to the sequential
// run — rendered table, JSON table, Chrome-trace export (session order
// and content), and the ledger's (fig, cell) sequence. Only HostNs may
// differ.
func TestParallelRunnerDeterministic(t *testing.T) {
	seqTab, seqRec, seqLed := runFig10At(t, 1)
	parTab, parRec, parLed := runFig10At(t, 8)

	if seqTab.String() != parTab.String() {
		t.Errorf("rendered tables differ:\n--- parallel=1\n%s\n--- parallel=8\n%s", seqTab, parTab)
	}
	seqJSON, _ := json.Marshal(seqTab)
	parJSON, _ := json.Marshal(parTab)
	if !bytes.Equal(seqJSON, parJSON) {
		t.Error("JSON tables differ between parallel widths")
	}

	seqTrace, err := seqRec.ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	parTrace, err := parRec.ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqTrace, parTrace) {
		t.Errorf("Chrome-trace exports differ between parallel widths (%d vs %d bytes)",
			len(seqTrace), len(parTrace))
	}

	var seqTL, parTL bytes.Buffer
	if err := seqRec.WriteTimelineJSONL(&seqTL); err != nil {
		t.Fatal(err)
	}
	if err := parRec.WriteTimelineJSONL(&parTL); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqTL.Bytes(), parTL.Bytes()) {
		t.Error("timeline JSONL exports differ between parallel widths")
	}

	seqCells, parCells := seqLed.Cells(), parLed.Cells()
	if len(seqCells) != len(parCells) {
		t.Fatalf("ledger lengths differ: %d vs %d", len(seqCells), len(parCells))
	}
	for i := range seqCells {
		if seqCells[i].Fig != parCells[i].Fig || seqCells[i].Cell != parCells[i].Cell {
			t.Errorf("ledger entry %d differs: %+v vs %+v", i, seqCells[i], parCells[i])
		}
	}
}

// TestParallelRunnerDeterministicUnderLoss repeats the width comparison
// with fault.Lossy plans and full tree validation in every cell: the
// reliable transport's retransmission schedule is virtual-time-driven,
// so it too must not see host scheduling.
func TestParallelRunnerDeterministicUnderLoss(t *testing.T) {
	lossy := func(parallel int) *Table {
		s := Spec{BaseScale: 12, Roots: 1, Parallel: parallel, Cache: graph500.NewGraphCache()}
		tab := &Table{Name: "loss-det", Columns: []string{"teps", "retrans"}}
		var cells []cellRun
		for _, opt := range []bfs.Opt{bfs.OptParAllgather, bfs.OptCompressedAllgather} {
			for _, rate := range []float64{0, 0.02} {
				opt, rate := opt, rate
				cells = append(cells, cellRun{
					label: fmt.Sprintf("%v/%g", opt, rate),
					run: func(cs Spec) (*graph500.Result, error) {
						plan := fault.Lossy(7, rate)
						cs.Faults = &plan
						cs.Validate = true
						opts := bfs.DefaultOptions()
						opts.Opt = opt
						return cs.run(2, machine.PPN8Bind, opts)
					},
				})
			}
		}
		results, err := s.collect("loss-det", cells)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		for i, res := range results {
			var retrans int64
			for _, rr := range res.PerRoot {
				retrans += rr.Xport.Retransmits
			}
			tab.AddRow(cells[i].label, res.HarmonicTEPS, float64(retrans))
		}
		return tab
	}
	seq, par := lossy(1), lossy(8)
	if seq.String() != par.String() {
		t.Errorf("lossy tables differ:\n--- parallel=1\n%s\n--- parallel=8\n%s", seq, par)
	}
}

// TestRunnerErrorDeterminism: parallel mode must surface the
// lowest-index error regardless of which worker fails first, and
// sequential mode must stop at the first failing cell.
func TestRunnerErrorDeterminism(t *testing.T) {
	errA := errors.New("cell 1 failed")
	errB := errors.New("cell 3 failed")
	mk := func(ran *[4]bool) []cell {
		return []cell{
			{label: "ok", run: func(Spec) error { ran[0] = true; return nil }},
			{label: "a", run: func(Spec) error { ran[1] = true; time.Sleep(20 * time.Millisecond); return errA }},
			{label: "ok2", run: func(Spec) error { ran[2] = true; return nil }},
			{label: "b", run: func(Spec) error { ran[3] = true; return errB }},
		}
	}

	var ranPar [4]bool
	s := Spec{Parallel: 4}
	// Cell 3's error lands long before cell 1's, but cell 1's must win.
	if err := s.runCells("t", mk(&ranPar)); !errors.Is(err, errA) {
		t.Errorf("parallel: got %v, want %v", err, errA)
	}
	for i, r := range ranPar {
		if !r {
			t.Errorf("parallel: cell %d never ran", i)
		}
	}

	var ranSeq [4]bool
	s.Parallel = 1
	if err := s.runCells("t", mk(&ranSeq)); !errors.Is(err, errA) {
		t.Errorf("sequential: got %v, want %v", err, errA)
	}
	if ranSeq[2] || ranSeq[3] {
		t.Error("sequential mode must stop at the first error")
	}
}

// TestRunnerObsAndLedgerOrder: with stub cells that each record a
// session, the parent recorder's session order and the ledger's entry
// order must match cell declaration order at any width.
func TestRunnerObsAndLedgerOrder(t *testing.T) {
	const n = 9
	s := Spec{Parallel: 4, Obs: obs.NewRecorder(), Ledger: NewLedger()}
	cells := make([]cell, n)
	for i := range cells {
		i := i
		cells[i] = cell{label: fmt.Sprintf("c%d", i), run: func(cs Spec) error {
			// Stagger so late-indexed cells finish first.
			time.Sleep(time.Duration(n-i) * 2 * time.Millisecond)
			cs.Obs.NewSession(fmt.Sprintf("s%d", i))
			return nil
		}}
	}
	if err := s.runCells("order", cells); err != nil {
		t.Fatal(err)
	}
	sessions := s.Obs.Sessions()
	if len(sessions) != n {
		t.Fatalf("sessions = %d, want %d", len(sessions), n)
	}
	for i, sess := range sessions {
		if want := fmt.Sprintf("s%d", i); sess.Label != want {
			t.Errorf("session %d = %q, want %q", i, sess.Label, want)
		}
	}
	led := s.Ledger.Cells()
	if len(led) != n {
		t.Fatalf("ledger = %d entries, want %d", len(led), n)
	}
	for i, c := range led {
		if want := fmt.Sprintf("c%d", i); c.Cell != want || c.Fig != "order" {
			t.Errorf("ledger %d = %+v, want fig=order cell=%s", i, c, want)
		}
	}
}

// TestRunnerDispatchesConcurrently verifies the pool actually overlaps
// cells in host time. Sleep-bound cells overlap regardless of core
// count, so this holds even on a single-CPU host; the >= 2x wall-clock
// speedup on simulation-bound figs is CI's host-budget concern.
func TestRunnerDispatchesConcurrently(t *testing.T) {
	const n, naplen = 8, 60 * time.Millisecond
	cells := make([]cell, n)
	for i := range cells {
		cells[i] = cell{label: fmt.Sprintf("nap%d", i), run: func(Spec) error {
			time.Sleep(naplen)
			return nil
		}}
	}
	s := Spec{Parallel: n}
	t0 := time.Now()
	if err := s.runCells("nap", cells); err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(t0); wall > time.Duration(n)*naplen/2 {
		t.Errorf("parallel width %d took %v for %d x %v cells — no overlap", n, wall, n, naplen)
	}
}
