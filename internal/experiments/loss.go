package experiments

import (
	"fmt"

	"numabfs/internal/bfs"
	"numabfs/internal/fault"
	"numabfs/internal/graph500"
)

// lossRates is the message-unreliability sweep: drop probability per
// inter-node message (fault.Lossy derives correlated duplicate, corrupt
// and reorder probabilities from it). Rate 0 still activates the
// reliable transport — that column isolates the pure protocol cost of
// frame headers and acks from the cost of actual loss.
var lossRates = []float64{0, 0.005, 0.02, 0.05}

// ExtLoss studies end-to-end result integrity and throughput under
// lossy links on a fixed 4-node cluster: every cumulative optimization
// level is rerun under a sweep of per-message drop rates (with
// correlated duplication, corruption and reordering), carried by the
// reliable transport under internal/mpi — sequence numbers, CRC,
// cumulative acks, timeout retransmission with exponential backoff.
// Every cell runs with full Graph500 tree validation as the oracle: a
// run only scores if its BFS tree is provably correct, so the table
// doubles as an integrity proof under any loss plan.
//
// Cells are harmonic-TEPS retained relative to the same level's clean
// run (no transport at all). The "loss 0%" column is the protocol tax
// alone; later columns add retransmission stalls. The compressed
// allgather moves the smallest segments, so each drop costs it the
// least absolute retransmission time — it degrades the most gracefully,
// the mirror image of the bandwidth-degradation result in Ext. faults.
func ExtLoss(s Spec) (*Table, error) {
	const nodes = 4
	const seed = 2026
	scale := s.scaleFor(nodes)

	t := &Table{
		Name: "Ext. loss",
		Title: fmt.Sprintf("TEPS retained under lossy links (%d nodes, scale %d, validated roots, seed %d)",
			nodes, scale, seed),
		Columns: []string{"clean", "loss 0%", "loss 0.5%", "loss 2%", "loss 5%"},
	}

	type lossCell struct {
		retained float64
		timeNs   float64
		retrans  int64
		overhead int64
		roots    int
	}
	variants := faultVariants()
	nCols := len(lossRates) + 1 // clean + the rate sweep

	var runs []cellRun
	for _, v := range variants {
		for i := -1; i < len(lossRates); i++ {
			v, i := v, i
			col := "clean"
			if i >= 0 {
				col = fmt.Sprintf("rate %g", lossRates[i])
			}
			runs = append(runs, cellRun{
				label: fmt.Sprintf("%s/%s", v.label, col),
				run: func(cs Spec) (*graph500.Result, error) {
					opts := bfs.DefaultOptions()
					opts.Opt = v.opt
					cs.Validate = true // Graph500 tree validation is the oracle for every cell
					if i >= 0 {
						plan := fault.Lossy(seed, lossRates[i])
						cs.Faults = &plan
					} else {
						cs.Faults = nil // clean: transport not even compiled into the timing
					}
					res, err := cs.run(nodes, v.policy, opts)
					if err != nil {
						return nil, fmt.Errorf("ext loss %s %s: %w", v.label, col, err)
					}
					return res, nil
				},
			})
		}
	}
	results, err := s.collect("loss", runs)
	if err != nil {
		return nil, err
	}

	cells := make(map[string][]lossCell, len(variants))
	for vi, v := range variants {
		row := make([]lossCell, 0, nCols)
		baseline := results[vi*nCols].HarmonicTEPS
		for i := 0; i < nCols; i++ {
			res := results[vi*nCols+i]
			c := lossCell{timeNs: res.MeanTimeNs, roots: len(res.PerRoot)}
			for _, rr := range res.PerRoot {
				c.retrans += rr.Xport.Retransmits
				c.overhead += rr.Xport.OverheadBytes
			}
			c.retained = res.HarmonicTEPS / baseline
			row = append(row, c)
		}
		cells[v.label] = row
		vals := make([]float64, len(row))
		for i, c := range row {
			vals[i] = c.retained
		}
		t.AddRow(v.label, vals...)
	}

	// Transport-ledger rows for the baseline level: retransmissions and
	// protocol overhead per root across the sweep. The clean column is
	// zero by construction — no transport, no protocol bytes.
	base := cells[variants[0].label]
	retrans := make([]float64, len(base))
	overMB := make([]float64, len(base))
	for i, c := range base {
		retrans[i] = float64(c.retrans) / float64(c.roots)
		overMB[i] = float64(c.overhead) / float64(c.roots) / (1 << 20)
	}
	t.AddRow("Retransmits/root (Original)", retrans...)
	t.AddRow("Overhead MiB/root (Original)", overMB...)

	// Per-drop cost comparison between the largest-segment and the
	// smallest-segment collective at the harshest rate.
	perDrop := func(label string) float64 {
		row := cells[label]
		last := row[len(row)-1]
		if last.retrans == 0 {
			return 0
		}
		return (last.timeNs - row[0].timeNs) * float64(last.roots) / float64(last.retrans)
	}
	parDrop := perDrop("+ Par allgather")
	cmpDrop := perDrop("+ Compressed allgather")

	t.Notes = append(t.Notes,
		"cells are harmonic-TEPS retained vs the same optimization level with no loss plan (column 1 is 1.0 by construction)",
		"every cell validates each BFS tree against the Graph500 spec — integrity holds under every loss rate",
		"the loss 0% column activates the reliable transport with zero loss: pure frame-header + ack protocol tax",
		fmt.Sprintf("virtual time lost per dropped message at 5%%: par allgather %.0f ns vs compressed allgather %.0f ns — smaller segments make each retransmission cheaper", parDrop, cmpDrop),
	)
	return t, nil
}
