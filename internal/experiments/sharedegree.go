package experiments

import (
	"fmt"

	"numabfs/internal/collective"
	"numabfs/internal/machine"
	"numabfs/internal/mpi"
)

// AblationShareDegree answers the paper's closing question — "To what
// extent data should be shared on NUMA platform need to be considered
// carefully" — by sweeping the sharing group size k: one in_queue
// mapping per k sockets (k = 1 is the private Original, k = 8 the
// paper's full node sharing).
//
// For each k, the communication side is *measured*: the k-group leaders
// gather their children's segments and allgather among all leaders (8/k
// concurrent streams per node); the computation side is *modelled*: the
// per-check access latency to an in_queue shared by k sockets (capacity
// grows with k, but hits migrate into slower peer caches), scaled by a
// representative bottom-up level's check count (~1.2 checks per vertex).
func AblationShareDegree(s Spec) (*Table, error) {
	const nodes = 16
	scale := s.scaleFor(nodes)
	cfg := s.clusterConfig(nodes)
	words := int64(1) << uint(scale-6) // |V|/64 words of in_queue
	inqBytes := words * 8
	checks := 1.2 * float64(int64(1)<<uint(scale)) / float64(nodes) // per node per level

	t := &Table{
		Name:  "Abl. share-degree",
		Title: fmt.Sprintf("Sharing-group size sweep (%d nodes, scale %d; per-level us)", nodes, scale),
		Columns: []string{
			"allgather us", "inq check ns", "compute us", "total us",
		},
	}

	var ks []int
	for _, k := range []int{1, 2, 4, 8} {
		if k > cfg.SocketsPerNode {
			break
		}
		ks = append(ks, k)
	}
	commNs := make([]float64, len(ks))
	cells := make([]cell, len(ks))
	for i, k := range ks {
		i, k := i, k
		cells[i] = cell{label: fmt.Sprintf("k=%d", k), run: func(cs Spec) error {
			ns, err := shareDegreeAllgather(cfg, words, k)
			if err != nil {
				return fmt.Errorf("share-degree k=%d: %w", k, err)
			}
			commNs[i] = ns
			return nil
		}}
	}
	if err := s.runCells("abl-sharedegree", cells); err != nil {
		return nil, err
	}
	for i, k := range ks {
		checkNs := cfg.SharedAccessLatency(inqBytes, k)
		// All the node's cores drive the checks irrespective of k.
		lanes := float64(cfg.CoresPerNode()) * cfg.MLP
		compNs := checks * checkNs / lanes
		t.AddRow(fmt.Sprintf("k=%d sockets per in_queue", k),
			commNs[i]/1e3, checkNs, compNs/1e3, (commNs[i]+compNs)/1e3)
	}
	t.Notes = append(t.Notes,
		"k=1 is Original (private copies, most communication); k=8 is the paper's full node sharing",
		"communication falls with k (fewer, larger leader segments); check latency rises once the bitmap no longer fits the group's caches locally")
	return t, nil
}

// shareDegreeAllgather measures one in_queue allgather when in_queue is
// shared per k-socket group: each group's leader collects its k-1
// children's segments, then all leaders allgather (a ring with 8/k
// leaders per node driving the NIC).
func shareDegreeAllgather(cfg machine.Config, words int64, k int) (float64, error) {
	pl := machine.PlacementFor(cfg, machine.PPN8Bind)
	w := mpi.NewWorld(cfg, pl)
	np := w.NumProcs()
	if np%k != 0 {
		return 0, fmt.Errorf("%d ranks not divisible by group size %d", np, k)
	}
	l := collective.EvenLayout(words, np)

	// Leaders: one per k consecutive ranks (k-groups never straddle a
	// node because k divides the socket count).
	leaders := make([]int, 0, np/k)
	for r := 0; r < np; r += k {
		leaders = append(leaders, r)
	}
	lg := collective.NewGroup(w, leaders)

	// Leader layout: each leader contributes its group's k segments.
	counts := make([]int64, len(leaders))
	displs := make([]int64, len(leaders))
	for i, r := range leaders {
		displs[i] = l.Displs[r]
		for j := 0; j < k; j++ {
			counts[i] += l.Counts[r+j]
		}
	}
	ll := collective.Layout{Counts: counts, Displs: displs}

	const tag = 0xA000
	w.Run(func(p *mpi.Proc) {
		me := p.Rank()
		seg := make([]uint64, l.Counts[me])
		if me%k == 0 {
			buf := make([]uint64, words)
			copy(buf[l.Displs[me]:], seg)
			for j := 1; j < k; j++ {
				m := p.Recv(me+j, tag)
				child := m.Payload.([]uint64)
				copy(buf[l.Displs[me+j]:l.Displs[me+j]+int64(len(child))], child)
			}
			lg.AllgatherRing(p, buf, ll)
		} else {
			leader := me - me%k
			p.Send(leader, tag, int64(len(seg))*8, seg, k-1)
		}
		p.NodeBarrier()
	})
	return w.MaxClock(), nil
}
