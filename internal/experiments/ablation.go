package experiments

import (
	"fmt"

	"numabfs/internal/collective"
	"numabfs/internal/machine"
	"numabfs/internal/mpi"
)

// allgatherAblation times one in_queue-sized allgather over the full
// 16-node, 128-rank cluster under each algorithm: ring (the library's
// long-message choice and the paper's Eq. 1 regime), recursive doubling,
// and Bruck. Run at both the in_queue and the summary payload size, the
// two allgathers of Fig. 1.
func allgatherAblation(s Spec) (*Table, error) {
	const nodes = 16
	scale := s.scaleFor(nodes)
	cfg := s.clusterConfig(nodes)
	inqWords := int64(1) << uint(scale-6)
	sumWords := inqWords / 64
	if sumWords < 1 {
		sumWords = 1
	}

	t := &Table{
		Name:  "Abl. allgather",
		Title: fmt.Sprintf("Allgather algorithm ablation, %d ranks (us per operation)", nodes*cfg.SocketsPerNode),
		Columns: []string{
			fmt.Sprintf("in_queue %dKB", inqWords*8>>10),
			fmt.Sprintf("summary %dB", sumWords*8),
		},
	}

	algos := []struct {
		label string
		fn    func(g *collective.Group, p *mpi.Proc, buf []uint64, l collective.Layout)
	}{
		{"ring", (*collective.Group).AllgatherRing},
		{"recursive doubling", (*collective.Group).AllgatherRecDouble},
		{"Bruck", (*collective.Group).AllgatherBruck},
		{"library default", (*collective.Group).Allgather},
	}
	sizes := []int64{inqWords, sumWords}
	us := make([]float64, len(algos)*len(sizes))
	var cells []cell
	for ai, a := range algos {
		for wi, words := range sizes {
			slot := ai*len(sizes) + wi
			a, words := a, words
			cells = append(cells, cell{
				label: fmt.Sprintf("%s/%dw", a.label, words),
				run: func(cs Spec) error {
					pl := machine.PlacementFor(cfg, machine.PPN8Bind)
					w := mpi.NewWorld(cfg, pl)
					g := collective.WorldGroup(w)
					l := collective.EvenLayout(words, g.Size())
					w.Run(func(p *mpi.Proc) {
						buf := make([]uint64, words)
						a.fn(g, p, buf, l)
					})
					us[slot] = w.MaxClock() / 1e3
					return nil
				},
			})
		}
	}
	if err := s.runCells("abl-allgather", cells); err != nil {
		return nil, err
	}
	for ai, a := range algos {
		t.AddRow(a.label, us[ai*len(sizes):(ai+1)*len(sizes)]...)
	}
	t.Notes = append(t.Notes,
		"Thakur-Gropp: recursive doubling wins short payloads, ring the long ones; the library default switches at the threshold")
	return t, nil
}
