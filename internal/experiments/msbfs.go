package experiments

import (
	"fmt"

	"numabfs/internal/bfs"
	"numabfs/internal/graph500"
	"numabfs/internal/machine"
	"numabfs/internal/queryserv"
	"numabfs/internal/rmat"
)

// This file holds the MS-BFS figures: the amortization table (one
// 64-root batch vs 64 sequential traversals per optimization level) and
// the query-server offered-load sweep. Both run on a fixed two-node
// cluster at the spec's base scale — batching amortizes the per-level
// collectives, so the interesting axis is the optimization ladder and
// the admission policy, not node count.

// msbfsOpts is the optimization ladder the batched engine supports (the
// overlapped allgather is a single-frontier pipeline and stays gated
// out; see msbfs.ValidateOptions).
var msbfsOpts = []bfs.Opt{
	bfs.OptOriginal, bfs.OptShareInQueue, bfs.OptShareAll,
	bfs.OptParAllgather, bfs.OptCompressedAllgather,
}

// msbfsWorkloadSeed fixes the Poisson arrival stream of the load sweep.
const msbfsWorkloadSeed = 11

// batchSize resolves Spec.Batch: 0 means the full 64 lanes, anything
// else clamps to one uint64's worth.
func (s Spec) batchSize() int {
	b := s.Batch
	if b == 0 {
		b = 64
	}
	if b > 64 {
		b = 64
	}
	if b < 1 {
		b = 1
	}
	return b
}

// msbfsConfig is the benchmark config of one MS-BFS cell: two nodes at
// the spec's base scale (no weak scaling — the figure sweeps the
// optimization ladder, not node count).
func (s Spec) msbfsConfig(opt bfs.Opt) graph500.Config {
	cfg := machine.Scaled(s.BaseScale, PaperBaseScale)
	cfg.Nodes = 2
	cfg.WeakNode = -1
	opts := bfs.DefaultOptions()
	opts.Opt = opt
	return graph500.Config{
		Machine:  cfg,
		Policy:   machine.PPN8Bind,
		Params:   rmat.Graph500(s.BaseScale),
		Opts:     opts,
		Obs:      s.Obs,
		SampleNs: s.SampleNs,
		Cache:    s.Cache,
	}
}

// ExtMSBFS compares one b-root batched traversal against b sequential
// single-root traversals of the same engine at every optimization level
// the batched engine supports: TEPS and virtual time of the batch, the
// plane-allgather rounds of each side, and the speedup and
// rounds-amortization ratios. Every cell validates each lane's parent
// tree against the Graph500 rules AND asserts bit-identity with the
// lane's sequential counterpart — the sequential runs double as the
// timing baseline and the correctness oracle.
func ExtMSBFS(s Spec) (*Table, error) {
	b := s.batchSize()
	t := &Table{
		Name: "Ext. msbfs",
		Title: fmt.Sprintf("Bit-parallel MS-BFS: one %d-root batch vs %d sequential runs (2 nodes, scale %d, validated lanes)",
			b, b, s.BaseScale),
		Columns: []string{"batch TEPS", "batch ms", "batch rounds", "seq ms", "seq rounds", "speedup", "rounds ratio"},
	}
	type msbfsOut struct {
		batchTEPS, batchNs, seqNs float64
		batchRounds, seqRounds    int64
	}
	outs := make([]msbfsOut, len(msbfsOpts))
	cells := make([]cell, len(msbfsOpts))
	for i, opt := range msbfsOpts {
		i, opt := i, opt
		cells[i] = cell{label: opt.String(), run: func(cs Spec) error {
			r, err := graph500.NewBatchRunner(cs.msbfsConfig(opt))
			if err != nil {
				return fmt.Errorf("msbfs %s: %w", opt, err)
			}
			roots := cs.msbfsConfig(opt).Params.Roots(b, r.HasEdgeGlobal)
			br := r.RunBatch(roots)
			if err := graph500.ValidateBatch(r, roots); err != nil {
				return fmt.Errorf("msbfs %s: %w", opt, err)
			}
			batched := make([][]int64, len(roots))
			for l := range roots {
				batched[l] = r.LaneParents(l)
			}
			var seqNs float64
			var seqRounds int64
			for l, root := range roots {
				sr := r.RunBatch([]int64{root})
				seqNs += sr.TimeNs
				seqRounds += sr.AllgatherRounds
				solo := r.LaneParents(0)
				for v := range solo {
					if solo[v] != batched[l][v] {
						return fmt.Errorf("msbfs %s lane %d (root %d) vertex %d: batched parent %d, sequential parent %d",
							opt, l, root, v, batched[l][v], solo[v])
					}
				}
			}
			outs[i] = msbfsOut{
				batchTEPS: br.TEPS, batchNs: br.TimeNs, seqNs: seqNs,
				batchRounds: br.AllgatherRounds, seqRounds: seqRounds,
			}
			return nil
		}}
	}
	if err := s.runCells("msbfs", cells); err != nil {
		return nil, err
	}
	for i, opt := range msbfsOpts {
		o := outs[i]
		speedup, ratio := 0.0, 0.0
		if o.batchNs > 0 {
			speedup = o.seqNs / o.batchNs
		}
		if o.batchRounds > 0 {
			ratio = float64(o.seqRounds) / float64(o.batchRounds)
		}
		t.AddRow("+ "+opt.String(), o.batchTEPS, o.batchNs/1e6, float64(o.batchRounds),
			o.seqNs/1e6, float64(o.seqRounds), speedup, ratio)
	}
	t.Notes = append(t.Notes,
		"one batched traversal serves every lane per adjacency scan, so the batch runs one compressed allgather per level where the sequential baseline runs one per level PER ROOT",
		fmt.Sprintf("rounds ratio approaches the lane count (%d): the headline amortization — a full batch does ~1/%dth the allgather rounds", b, b),
		"every cell Graph500-validates each lane's tree and asserts it bit-identical to the lane's own batch-of-one run — batching is a pure performance transformation",
		"acceptance: batch rounds strictly below seq rounds and batch ms strictly below seq ms on every row")
	return t, nil
}

// msbfsLoadLevels are the offered loads of the query-server sweep as
// fractions of the engine's full-batch capacity (lanes per batch
// duration): well under, at, and well over saturation.
var msbfsLoadLevels = []float64{0.25, 1, 4}

// ExtMSBFSLoad sweeps the query server's offered load under two
// admission policies — batch-of-one (latency-optimal, amortization-free)
// and fill-up-to-b with a fill timeout — and reports served throughput,
// batch fill, latency percentiles, and allgather rounds per query. The
// crossover is the figure's point: below saturation batch-1 wins on
// latency; past it the batched policy's amortized collectives hold
// latency while batch-1 queues without bound.
func ExtMSBFSLoad(s Spec) (*Table, error) {
	b := s.batchSize()
	t := &Table{
		Name: "Ext. msbfs-load",
		Title: fmt.Sprintf("MS-BFS query server under offered load (2 nodes, scale %d, %d queries/cell)",
			s.BaseScale, msbfsLoadQueries(b)),
		Columns: []string{"offered qps", "served qps", "mean fill", "p50 ms", "p95 ms", "p99 ms", "rounds/query"},
	}
	type loadCell struct {
		label  string
		policy func(fillNs float64) queryserv.Policy
		load   float64
	}
	var cfgs []loadCell
	for _, load := range msbfsLoadLevels {
		load := load
		cfgs = append(cfgs, loadCell{
			label:  fmt.Sprintf("batch-1 immediate @ %gx", load),
			policy: func(float64) queryserv.Policy { return queryserv.Policy{MaxBatch: 1} },
			load:   load,
		})
		cfgs = append(cfgs, loadCell{
			label: fmt.Sprintf("batch-%d fill @ %gx", b, load),
			policy: func(fillNs float64) queryserv.Policy {
				return queryserv.Policy{MaxBatch: b, FillTimeoutNs: fillNs}
			},
			load: load,
		})
	}
	type loadOut struct {
		offered float64
		res     *queryserv.Result
		queries int
	}
	outs := make([]loadOut, len(cfgs))
	cells := make([]cell, len(cfgs))
	for i, c := range cfgs {
		i, c := i, c
		cells[i] = cell{label: c.label, run: func(cs Spec) error {
			gc := cs.msbfsConfig(bfs.OptCompressedAllgather)
			r, err := graph500.NewBatchRunner(gc)
			if err != nil {
				return fmt.Errorf("msbfs-load %s: %w", c.label, err)
			}
			// Calibrate capacity from one full batch: offered load and the
			// default fill timeout are expressed against it, so the sweep
			// stresses the same operating points at every scale. Virtual
			// time is deterministic, so the calibration is too.
			calib := r.RunBatch(gc.Params.Roots(b, r.HasEdgeGlobal))
			capacityQPS := float64(b) / (calib.TimeNs / 1e9)
			fillNs := cs.FillTimeoutNs
			if fillNs == 0 {
				fillNs = 2 * calib.TimeNs
			}
			nq := msbfsLoadQueries(b)
			queries := queryserv.PoissonWorkload(nq, c.load*capacityQPS,
				msbfsWorkloadSeed, gc.Params.NumVertices(), r.HasEdgeGlobal)
			res, err := queryserv.Serve(r, c.policy(fillNs), queries)
			if err != nil {
				return fmt.Errorf("msbfs-load %s: %w", c.label, err)
			}
			outs[i] = loadOut{offered: c.load * capacityQPS, res: res, queries: nq}
			return nil
		}}
	}
	if err := s.runCells("msbfs-load", cells); err != nil {
		return nil, err
	}
	for i, c := range cfgs {
		o := outs[i]
		t.AddRow(c.label, o.offered, o.res.ThroughputQPS, o.res.MeanBatchFill,
			o.res.LatencyPercentile(50)/1e6, o.res.LatencyPercentile(95)/1e6,
			o.res.LatencyPercentile(99)/1e6,
			float64(o.res.AllgatherRounds)/float64(o.queries))
	}
	t.Notes = append(t.Notes,
		"offered load is a multiple of the engine's calibrated full-batch capacity (lanes / batch duration); the same multiples stress the same operating points at every scale",
		"past 1x offered load batch-1 latency explodes (every query queues behind one traversal per predecessor) while the filled batches amortize one allgather round across up to the full lane count",
		fmt.Sprintf("fill timeout: %s", fillNote(s.FillTimeoutNs)))
	return t, nil
}

// msbfsLoadQueries sizes the load sweep's workload: a few batches'
// worth of queries, capped to keep the batch-1 cells affordable.
func msbfsLoadQueries(b int) int {
	nq := 3 * b
	if nq > 96 {
		nq = 96
	}
	if nq < 8 {
		nq = 8
	}
	return nq
}

func fillNote(fillNs float64) string {
	if fillNs == 0 {
		return "2x the calibrated batch duration (default; override with -fill-timeout-ns)"
	}
	return fmt.Sprintf("%g ns (-fill-timeout-ns)", fillNs)
}
