// Package xrand provides small, fast, deterministic pseudo-random number
// generators used throughout the repository. Every generator is seeded
// explicitly, so graph generation, root selection and workload synthesis
// are reproducible across runs and host architectures.
//
// Two generators are provided:
//
//   - SplitMix64: a tiny, statistically strong generator used for seeding
//     and for short streams.
//   - Xoshiro256: xoshiro256**, used for long streams such as R-MAT edge
//     generation, seeded from SplitMix64 per Vigna's recommendation.
package xrand

import "math"

// SplitMix64 is the 64-bit SplitMix generator of Steele, Lea and Flood.
// The zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro256 is the xoshiro256** generator of Blackman and Vigna.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a generator whose state is expanded from seed
// with SplitMix64, as recommended by the xoshiro authors.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Uint64()
	}
	// An all-zero state would be a fixed point; SplitMix64 cannot produce
	// four consecutive zeros, but guard anyway for safety.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return x.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits.
	max := math.MaxUint64 - math.MaxUint64%n
	for {
		v := x.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Int63 returns a non-negative int64.
func (x *Xoshiro256) Int63() int64 {
	return int64(x.Uint64() >> 1)
}

// Perm returns a pseudo-random permutation of [0, n) as a slice of int64,
// built with the Fisher-Yates shuffle.
func (x *Xoshiro256) Perm(n int64) []int64 {
	p := make([]int64, n)
	for i := int64(0); i < n; i++ {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int64(x.Uint64n(uint64(i + 1)))
		p[i], p[j] = p[j], p[i]
	}
	return p
}
