package xrand

import (
	"testing"
	"testing/quick"
)

func TestSplitMix64PinnedValues(t *testing.T) {
	// Pinned outputs for seed 1234567: any change to the mixing
	// constants silently reshuffles every generated graph, so the stream
	// is locked here.
	s := NewSplitMix64(1234567)
	want := []uint64{0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := NewSplitMix64(42), NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestXoshiroDeterministicAndSeedSensitive(t *testing.T) {
	a, b := NewXoshiro256(7), NewXoshiro256(7)
	c := NewXoshiro256(8)
	same, diff := true, false
	for i := 0; i < 64; i++ {
		av := a.Uint64()
		if av != b.Uint64() {
			same = false
		}
		if av != c.Uint64() {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed diverged")
	}
	if !diff {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestFloat64Range(t *testing.T) {
	x := NewXoshiro256(99)
	for i := 0; i < 10000; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	x := NewXoshiro256(3)
	for _, n := range []uint64{1, 2, 3, 7, 64, 1000, 1 << 40} {
		for i := 0; i < 1000; i++ {
			if v := x.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d", n, v)
			}
		}
	}
}

func TestUint64nZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewXoshiro256(1).Uint64n(0)
}

func TestUint64nRoughlyUniform(t *testing.T) {
	x := NewXoshiro256(5)
	const n, iters = 10, 100000
	var counts [n]int
	for i := 0; i < iters; i++ {
		counts[x.Uint64n(n)]++
	}
	for b, c := range counts {
		if c < iters/n*8/10 || c > iters/n*12/10 {
			t.Fatalf("bucket %d has %d of %d draws", b, c, iters)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nSmall uint8) bool {
		n := int64(nSmall%64) + 1
		p := NewXoshiro256(seed).Perm(n)
		if int64(len(p)) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInt63NonNegative(t *testing.T) {
	x := NewXoshiro256(11)
	for i := 0; i < 10000; i++ {
		if x.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}
