package fault

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestPlanEmpty(t *testing.T) {
	if !(Plan{}).Empty() {
		t.Error("zero Plan not Empty")
	}
	if !(Plan{Seed: 7}).Empty() {
		t.Error("seed alone should not make a plan non-empty")
	}
	cases := []Plan{
		{BW: []BWEvent{{Node: 0, Factor: 0.5}}},
		{Stragglers: []Straggler{{Rank: 0, Factor: 2}}},
		{JitterMaxNs: 10},
		{Crashes: []Crash{{Rank: 0, AtNs: 1}}},
	}
	for i, p := range cases {
		if p.Empty() {
			t.Errorf("case %d: plan reported Empty", i)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{BW: []BWEvent{{Node: 0, Factor: 0}}},
		{BW: []BWEvent{{Node: 0, Factor: 1.5}}}, // the 80-for-0.8 typo class
		{BW: []BWEvent{{Node: 0, Factor: 0.5, FromNs: -1}}},
		{BW: []BWEvent{{Node: 0, Factor: 0.5, FromNs: 5, UntilNs: 5}}},
		{Stragglers: []Straggler{{Rank: 0, Factor: 0}}},
		{Stragglers: []Straggler{{Rank: 4, Factor: 2}}},
		{Stragglers: []Straggler{{Rank: -1, Factor: 2}}},
		{JitterMaxNs: -1},
		{Crashes: []Crash{{Rank: 4, AtNs: 1}}},
		{Crashes: []Crash{{Rank: 0, AtNs: -1}}},
		{DetectTimeoutNs: -1},
	}
	for i, p := range bad {
		if err := p.Validate(4); err == nil {
			t.Errorf("bad plan %d validated: %+v", i, p)
		}
	}
	good := Plan{
		Seed:            1,
		BW:              []BWEvent{{Node: 99, Src: -1, Dst: -1, Factor: 0.5}}, // out-of-cluster node never matches, like WeakNode on small runs
		Stragglers:      []Straggler{{Rank: 3, Factor: 4}},
		JitterMaxNs:     50,
		Crashes:         []Crash{{Rank: 0, AtNs: 1e6}},
		DetectTimeoutNs: 100,
	}
	if err := good.Validate(4); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
}

func TestWeakNodePlan(t *testing.T) {
	if !WeakNode(-1, 0.8).Empty() {
		t.Error("WeakNode(-1) should be empty")
	}
	p := WeakNode(2, 0.5)
	in, err := NewInjector(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f := in.LinkFactor(2, 0, 0); f != 0.5 {
		t.Errorf("src weak: factor %g, want 0.5", f)
	}
	if f := in.LinkFactor(0, 2, 1e12); f != 0.5 {
		t.Errorf("dst weak, forever: factor %g, want 0.5", f)
	}
	if f := in.LinkFactor(0, 1, 0); f != 1 {
		t.Errorf("unrelated link: factor %g, want exactly 1", f)
	}
}

func TestLinkFactorWindowsAndScope(t *testing.T) {
	p := Plan{BW: []BWEvent{
		{Node: 1, Src: -1, Dst: -1, Factor: 0.5, FromNs: 100, UntilNs: 200}, // brown-out
		{Node: -1, Src: 0, Dst: 2, Factor: 0.25},                            // directed link, forever
	}}
	in, err := NewInjector(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f := in.LinkFactor(1, 0, 50); f != 1 {
		t.Errorf("before window: %g", f)
	}
	if f := in.LinkFactor(1, 0, 100); f != 0.5 {
		t.Errorf("window start inclusive: %g", f)
	}
	if f := in.LinkFactor(0, 1, 199); f != 0.5 {
		t.Errorf("inside window (either endpoint): %g", f)
	}
	if f := in.LinkFactor(1, 0, 200); f != 1 {
		t.Errorf("window end exclusive: %g", f)
	}
	if f := in.LinkFactor(0, 2, 1e9); f != 0.25 {
		t.Errorf("directed link: %g", f)
	}
	if f := in.LinkFactor(2, 0, 1e9); f != 1 {
		t.Errorf("reverse of directed link: %g", f)
	}
	// src=1 dst=2 matches the node-1 brown-out but not the 0->2 link
	// event: only the brown-out applies.
	if f := in.LinkFactor(1, 2, 150); f != 0.5 {
		t.Errorf("endpoint-1 transfer at 150: %g, want 0.5", f)
	}
	p2 := Plan{BW: []BWEvent{
		{Node: 0, Src: -1, Dst: -1, Factor: 0.5},
		{Node: -1, Src: 0, Dst: 1, Factor: 0.5},
	}}
	in2, err := NewInjector(p2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f := in2.LinkFactor(0, 1, 0); f != 0.25 {
		t.Errorf("overlapping events should multiply: %g, want 0.25", f)
	}
}

func TestComputeScale(t *testing.T) {
	p := Plan{Stragglers: []Straggler{{Rank: 1, Factor: 2}, {Rank: 1, Factor: 3}}}
	in, err := NewInjector(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s := in.ComputeScale(0); s != 1 {
		t.Errorf("rank 0 scale %g, want exactly 1", s)
	}
	if s := in.ComputeScale(1); s != 6 {
		t.Errorf("rank 1 scale %g, want 6 (entries multiply)", s)
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	in, err := NewInjector(Plan{Seed: 42, JitterMaxNs: 100}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	distinct := false
	for i := 0; i < 1000; i++ {
		sent := float64(i) * 17.5
		j := in.JitterNs(1, 2, sent, int64(i))
		if j < 0 || j >= 100 {
			t.Fatalf("jitter %g outside [0, 100)", j)
		}
		if j2 := in.JitterNs(1, 2, sent, int64(i)); j2 != j {
			t.Fatalf("jitter not deterministic: %g then %g", j, j2)
		}
		if i > 0 && j != prev {
			distinct = true
		}
		prev = j
	}
	if !distinct {
		t.Error("jitter constant across messages")
	}
	// A different seed gives a different draw for the same message.
	in2, _ := NewInjector(Plan{Seed: 43, JitterMaxNs: 100}, 0)
	if in.JitterNs(1, 2, 17.5, 1) == in2.JitterNs(1, 2, 17.5, 1) {
		t.Error("seed does not drive the jitter hash")
	}
}

func TestJitterOffIsExactlyZero(t *testing.T) {
	in, err := NewInjector(Plan{Seed: 42}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if j := in.JitterNs(0, 1, 123.4, 5); j != 0 {
		t.Errorf("jitter with JitterMaxNs=0: %g, want exactly 0", j)
	}
	var nilInj *Injector
	if nilInj.JitterNs(0, 1, 1, 1) != 0 || nilInj.LinkFactor(0, 1, 0) != 1 || nilInj.ComputeScale(0) != 1 {
		t.Error("nil injector must be the identity")
	}
}

func TestCrashScheduleAndDisarm(t *testing.T) {
	p := Plan{Crashes: []Crash{{Rank: 2, AtNs: 500}, {Rank: 2, AtNs: 100}}}
	in, err := NewInjector(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := in.NextCrash(0); ok {
		t.Error("rank 0 has no crash scheduled")
	}
	at, ok := in.NextCrash(2)
	if !ok || at != 100 {
		t.Errorf("NextCrash(2) = %g, %v; want 100, true (sorted ascending)", at, ok)
	}
	in.Disarm(2, 100)
	at, ok = in.NextCrash(2)
	if !ok || at != 500 {
		t.Errorf("after disarm: NextCrash(2) = %g, %v; want 500, true", at, ok)
	}
	in.Disarm(2, 500)
	if _, ok := in.NextCrash(2); ok {
		t.Error("all crashes disarmed but NextCrash still fires")
	}
}

func TestMerge(t *testing.T) {
	a := Plan{Seed: 1, BW: []BWEvent{{Node: 0, Factor: 0.5}}, JitterMaxNs: 10}
	b := Plan{Seed: 2, Stragglers: []Straggler{{Rank: 0, Factor: 2}}, JitterMaxNs: 5, DetectTimeoutNs: 99}
	m := a.Merge(b)
	if m.Seed != 2 {
		t.Errorf("Seed = %d, want o's 2", m.Seed)
	}
	if len(m.BW) != 1 || len(m.Stragglers) != 1 {
		t.Errorf("merged lists: %d bw, %d stragglers", len(m.BW), len(m.Stragglers))
	}
	if m.JitterMaxNs != 10 {
		t.Errorf("JitterMaxNs = %g, want max 10", m.JitterMaxNs)
	}
	if m.DetectTimeoutNs != 99 {
		t.Errorf("DetectTimeoutNs = %g, want 99", m.DetectTimeoutNs)
	}
	// Merge does not alias the inputs.
	m.BW[0].Factor = 0.9
	if a.BW[0].Factor != 0.5 {
		t.Error("Merge aliased the receiver's BW slice")
	}
}

func TestDetectTimeoutDefault(t *testing.T) {
	in, _ := NewInjector(Plan{}, 0)
	if in.DetectTimeoutNs() != DefaultDetectTimeoutNs {
		t.Errorf("default detect timeout = %g", in.DetectTimeoutNs())
	}
	in2, _ := NewInjector(Plan{DetectTimeoutNs: 5}, 0)
	if in2.DetectTimeoutNs() != 5 {
		t.Errorf("plan detect timeout = %g, want 5", in2.DetectTimeoutNs())
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p := Plan{
		Seed:        9,
		BW:          []BWEvent{{Node: 3, Src: -1, Dst: -1, Factor: 0.8, FromNs: 10, UntilNs: 20}},
		Stragglers:  []Straggler{{Rank: 1, Factor: 1.5}},
		JitterMaxNs: 25,
		Crashes:     []Crash{{Rank: 0, AtNs: 1e6}},
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Plan
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if q.Seed != p.Seed || len(q.BW) != 1 || q.BW[0] != p.BW[0] ||
		len(q.Stragglers) != 1 || q.Stragglers[0] != p.Stragglers[0] ||
		q.JitterMaxNs != p.JitterMaxNs || len(q.Crashes) != 1 || q.Crashes[0] != p.Crashes[0] {
		t.Errorf("round trip lost data: %+v -> %s -> %+v", p, data, q)
	}
}

func TestErrorMessage(t *testing.T) {
	e := &Error{Rank: 3, AtNs: 1.5e6}
	if e.Error() == "" || math.IsNaN(e.AtNs) {
		t.Error("empty error message")
	}
}

func TestPlanEmptyWithLoss(t *testing.T) {
	if (Plan{Loss: []Loss{{Node: -1, Src: -1, Dst: -1}}}).Empty() {
		t.Error("a loss event (even all-zero probabilities) must make the plan non-empty")
	}
	// Transport tuning alone configures machinery that never engages, so
	// it keeps the plan empty — the DetectTimeoutNs precedent.
	if !(Plan{RetransmitTimeoutNs: 5e3, RetransmitBackoff: 1.5, RetryBudget: 8}).Empty() {
		t.Error("transport tuning alone should not make a plan non-empty")
	}
}

func TestPlanValidateLoss(t *testing.T) {
	bad := []Plan{
		{Loss: []Loss{{Node: -1, Src: -1, Dst: -1, DropProb: -0.1}}},
		{Loss: []Loss{{Node: -1, Src: -1, Dst: -1, DropProb: 1.5}}},
		{Loss: []Loss{{Node: -1, Src: -1, Dst: -1, DupProb: 2}}},
		{Loss: []Loss{{Node: -1, Src: -1, Dst: -1, CorruptProb: -1}}},
		{Loss: []Loss{{Node: -1, Src: -1, Dst: -1, ReorderProb: 1.01, ReorderWindow: 4}}},
		{Loss: []Loss{{Node: -1, Src: -1, Dst: -1, ReorderWindow: -2}}},
		{Loss: []Loss{{Node: -1, Src: -1, Dst: -1, ReorderProb: 0.5}}}, // reorder without a window
		{Loss: []Loss{{Node: -1, Src: -1, Dst: -1, DropProb: 0.1, FromNs: -5}}},
		{Loss: []Loss{{Node: -1, Src: -1, Dst: -1, DropProb: 0.1, FromNs: 9, UntilNs: 9}}},
		{RetransmitTimeoutNs: -1},
		{RetransmitBackoff: 0.5},
		{RetryBudget: -3},
	}
	for i, p := range bad {
		if err := p.Validate(4); err == nil {
			t.Errorf("bad loss plan %d validated: %+v", i, p)
		}
	}
	good := []Plan{
		Lossy(1, 0.05),
		Lossy(1, 0), // transport on, nothing lost
		{Loss: []Loss{{Node: 2, Src: -1, Dst: -1, DropProb: 1, FromNs: 100, UntilNs: 200}}}, // total brown-out window
		{Loss: []Loss{{Node: -1, Src: 0, Dst: 1, CorruptProb: 0.3}}, RetransmitTimeoutNs: 1e3, RetransmitBackoff: 1, RetryBudget: 2},
	}
	for i, p := range good {
		if err := p.Validate(4); err != nil {
			t.Errorf("good loss plan %d rejected: %v", i, err)
		}
	}
}

func TestMergeLossAndTuning(t *testing.T) {
	a := Plan{Loss: []Loss{{Node: 0, Src: -1, Dst: -1, DropProb: 0.1}}, RetransmitTimeoutNs: 7e3}
	b := Plan{Loss: []Loss{{Node: 1, Src: -1, Dst: -1, DupProb: 0.2}}, RetransmitBackoff: 3, RetryBudget: 5}
	m := a.Merge(b)
	if len(m.Loss) != 2 {
		t.Fatalf("merged loss events = %d, want 2", len(m.Loss))
	}
	if m.RetransmitTimeoutNs != 7e3 || m.RetransmitBackoff != 3 || m.RetryBudget != 5 {
		t.Errorf("tuning merge: rto %g backoff %g budget %d", m.RetransmitTimeoutNs, m.RetransmitBackoff, m.RetryBudget)
	}
	// o's tuning wins when both set.
	m2 := Plan{RetransmitTimeoutNs: 1}.Merge(Plan{RetransmitTimeoutNs: 2})
	if m2.RetransmitTimeoutNs != 2 {
		t.Errorf("o's RetransmitTimeoutNs should win: %g", m2.RetransmitTimeoutNs)
	}
	m.Loss[0].DropProb = 0.9
	if a.Loss[0].DropProb != 0.1 {
		t.Error("Merge aliased the receiver's Loss slice")
	}
}

// TestMergeDedupesCrashes is the regression test for the duplicate-crash
// bug: merging two plans that both arm a crash for the same rank used to
// concatenate both events, so the recovered run immediately died again
// to the duplicate. Merge now keeps the earliest crash per rank.
func TestMergeDedupesCrashes(t *testing.T) {
	a := Plan{Crashes: []Crash{{Rank: 2, AtNs: 500}, {Rank: 0, AtNs: 900}}}
	b := Plan{Crashes: []Crash{{Rank: 2, AtNs: 300}, {Rank: 1, AtNs: 50}}}
	m := a.Merge(b)
	want := []Crash{{Rank: 0, AtNs: 900}, {Rank: 1, AtNs: 50}, {Rank: 2, AtNs: 300}}
	if len(m.Crashes) != len(want) {
		t.Fatalf("merged crashes = %+v, want %+v", m.Crashes, want)
	}
	for i := range want {
		if m.Crashes[i] != want[i] {
			t.Fatalf("crash %d = %+v, want %+v (earliest per rank, rank order)", i, m.Crashes[i], want[i])
		}
	}
	// Merging with an empty plan still dedupes self-duplicates.
	m2 := Plan{Crashes: []Crash{{Rank: 3, AtNs: 9}, {Rank: 3, AtNs: 4}}}.Merge(Plan{})
	if len(m2.Crashes) != 1 || m2.Crashes[0] != (Crash{Rank: 3, AtNs: 4}) {
		t.Fatalf("self-duplicate survived merge: %+v", m2.Crashes)
	}
	if (Plan{}).Merge(Plan{}).Crashes != nil {
		t.Error("empty merge should keep a nil crash list")
	}
}

func TestLossAtScopeAndCombination(t *testing.T) {
	p := Plan{Loss: []Loss{
		{Node: 1, Src: -1, Dst: -1, DropProb: 0.5, FromNs: 100, UntilNs: 200},
		{Node: -1, Src: 0, Dst: 2, DropProb: 0.5, DupProb: 0.25, ReorderProb: 0.1, ReorderWindow: 3},
	}}
	in, err := NewInjector(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l := in.LossAt(1, 0, 50); l != (LinkLoss{}) {
		t.Errorf("before window: %+v", l)
	}
	if l := in.LossAt(1, 0, 100); l.Drop != 0.5 {
		t.Errorf("window start inclusive: %+v", l)
	}
	if l := in.LossAt(0, 2, 1e9); l.Drop != 0.5 || l.Dup != 0.25 || l.Window != 3 {
		t.Errorf("directed link: %+v", l)
	}
	if l := in.LossAt(2, 0, 1e9); l != (LinkLoss{}) {
		t.Errorf("reverse of directed link: %+v", l)
	}
	// Inside the window both events hit the 0->2... no: src 0 dst 2 does
	// not touch node 1. Use 1->2 at 150: only the brown-out applies.
	if l := in.LossAt(1, 2, 150); l.Drop != 0.5 || l.Dup != 0 {
		t.Errorf("endpoint-1 frame at 150: %+v", l)
	}
	// Overlap: two 0.5 drops combine as independent hazards.
	p2 := Plan{Loss: []Loss{
		{Node: 0, Src: -1, Dst: -1, DropProb: 0.5},
		{Node: -1, Src: 0, Dst: 1, DropProb: 0.5, ReorderProb: 0.2, ReorderWindow: 2},
	}}
	in2, _ := NewInjector(p2, 0)
	if l := in2.LossAt(0, 1, 0); math.Abs(l.Drop-0.75) > 1e-12 || l.Window != 2 {
		t.Errorf("overlap: %+v, want drop 0.75 window 2", l)
	}
	var nilInj *Injector
	if nilInj.LossAt(0, 1, 0) != (LinkLoss{}) || nilInj.Reliable() {
		t.Error("nil injector must be loss-free and unreliable-transport-off")
	}
}

func TestReliableSwitch(t *testing.T) {
	in, _ := NewInjector(Plan{JitterMaxNs: 5}, 0)
	if in.Reliable() {
		t.Error("plan without loss events must not activate the transport")
	}
	in2, _ := NewInjector(Lossy(1, 0), 0)
	if !in2.Reliable() {
		t.Error("zero-rate loss event must still activate the transport")
	}
}

func TestTransportDrawDeterministicBoundedIndependent(t *testing.T) {
	in, _ := NewInjector(Lossy(42, 0.05), 0)
	seen := map[float64]bool{}
	for attempt := 1; attempt <= 100; attempt++ {
		d := in.TransportDraw(DrawDrop, 1, 2, 1234.5, 999, attempt)
		if d < 0 || d >= 1 {
			t.Fatalf("draw %g outside [0, 1)", d)
		}
		if d2 := in.TransportDraw(DrawDrop, 1, 2, 1234.5, 999, attempt); d2 != d {
			t.Fatalf("draw not deterministic: %g then %g", d, d2)
		}
		seen[d] = true
	}
	if len(seen) < 95 {
		t.Errorf("only %d distinct draws across 100 attempts", len(seen))
	}
	// Purposes are independent hash lanes.
	if in.TransportDraw(DrawDrop, 1, 2, 10, 8, 1) == in.TransportDraw(DrawDup, 1, 2, 10, 8, 1) {
		t.Error("purposes share a hash lane")
	}
	// Seed drives the draws.
	in2, _ := NewInjector(Lossy(43, 0.05), 0)
	if in.TransportDraw(DrawDrop, 1, 2, 10, 8, 1) == in2.TransportDraw(DrawDrop, 1, 2, 10, 8, 1) {
		t.Error("seed does not drive the transport hash")
	}
}

func TestTransportTuningDefaults(t *testing.T) {
	in, _ := NewInjector(Plan{}, 0)
	if in.RetransmitTimeoutNs() != DefaultRetransmitTimeoutNs ||
		in.RetransmitBackoff() != DefaultRetransmitBackoff ||
		in.RetryBudget() != DefaultRetryBudget {
		t.Error("tuning defaults not applied")
	}
	in2, _ := NewInjector(Plan{RetransmitTimeoutNs: 5e3, RetransmitBackoff: 1.5, RetryBudget: 3}, 0)
	if in2.RetransmitTimeoutNs() != 5e3 || in2.RetransmitBackoff() != 1.5 || in2.RetryBudget() != 3 {
		t.Error("plan tuning not honored")
	}
	var nilInj *Injector
	if nilInj.RetransmitTimeoutNs() != DefaultRetransmitTimeoutNs || nilInj.RetryBudget() != DefaultRetryBudget {
		t.Error("nil injector tuning defaults")
	}
}

func TestLossyHelper(t *testing.T) {
	p := Lossy(7, 0.04)
	if err := p.Validate(0); err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || len(p.Loss) != 1 {
		t.Fatalf("Lossy shape: %+v", p)
	}
	e := p.Loss[0]
	if e.DropProb != 0.04 || e.DupProb != 0.02 || e.CorruptProb != 0.01 || e.ReorderProb != 0.04 || e.ReorderWindow != 4 {
		t.Errorf("Lossy rates: %+v", e)
	}
	if e.Node != -1 || e.Src != -1 || e.Dst != -1 {
		t.Errorf("Lossy must cover every link: %+v", e)
	}
}

func TestLossJSONRoundTrip(t *testing.T) {
	p := Plan{
		Seed:                3,
		Loss:                []Loss{{Node: -1, Src: 0, Dst: 1, DropProb: 0.02, DupProb: 0.01, CorruptProb: 0.005, ReorderProb: 0.02, ReorderWindow: 4, FromNs: 10, UntilNs: 20}},
		RetransmitTimeoutNs: 9e3,
		RetransmitBackoff:   1.5,
		RetryBudget:         6,
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Plan
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if len(q.Loss) != 1 || q.Loss[0] != p.Loss[0] ||
		q.RetransmitTimeoutNs != p.RetransmitTimeoutNs ||
		q.RetransmitBackoff != p.RetransmitBackoff || q.RetryBudget != p.RetryBudget {
		t.Errorf("round trip lost data: %+v -> %s -> %+v", p, data, q)
	}
}

func TestErrorKinds(t *testing.T) {
	crash := &Error{Rank: 3, AtNs: 1.5e6}
	if crash.Kind != KindCrash {
		t.Error("zero Kind must be KindCrash for backward compatibility")
	}
	loss := &Error{Rank: 1, AtNs: 2e6, Kind: KindLinkLoss}
	if crash.Error() == loss.Error() {
		t.Error("kinds must render distinct messages")
	}
	if !strings.Contains(loss.Error(), "retry budget") {
		t.Errorf("link-loss message: %q", loss.Error())
	}
}

// TestMergeDetectorTuningPrecedence pins the documented merge rule for
// the failure-detector knobs: the argument's value wins when it sets one
// (> 0), the receiver's survives otherwise, and an unset field never
// erases a set one — in either direction.
func TestMergeDetectorTuningPrecedence(t *testing.T) {
	cases := []struct {
		name                 string
		a, b                 Plan
		wantDetect, wantBeat float64
	}{
		{"both unset", Plan{}, Plan{}, 0, 0},
		{"receiver only", Plan{DetectTimeoutNs: 5e5, HeartbeatPeriodNs: 1e5}, Plan{}, 5e5, 1e5},
		{"argument only", Plan{}, Plan{DetectTimeoutNs: 7e5, HeartbeatPeriodNs: 2e5}, 7e5, 2e5},
		{"argument wins conflict", Plan{DetectTimeoutNs: 5e5, HeartbeatPeriodNs: 1e5},
			Plan{DetectTimeoutNs: 7e5, HeartbeatPeriodNs: 2e5}, 7e5, 2e5},
		{"fields independent", Plan{DetectTimeoutNs: 5e5, HeartbeatPeriodNs: 1e5},
			Plan{HeartbeatPeriodNs: 2e5}, 5e5, 2e5},
	}
	for _, tc := range cases {
		m := tc.a.Merge(tc.b)
		if m.DetectTimeoutNs != tc.wantDetect || m.HeartbeatPeriodNs != tc.wantBeat {
			t.Errorf("%s: detect %g beat %g, want %g %g",
				tc.name, m.DetectTimeoutNs, m.HeartbeatPeriodNs, tc.wantDetect, tc.wantBeat)
		}
	}
	// Retry tuning follows the same rule, including the never-erase leg.
	m := Plan{RetransmitTimeoutNs: 3, RetransmitBackoff: 2, RetryBudget: 4}.Merge(Plan{})
	if m.RetransmitTimeoutNs != 3 || m.RetransmitBackoff != 2 || m.RetryBudget != 4 {
		t.Errorf("empty argument erased retry tuning: %+v", m)
	}
}

// TestMergeCrashTiePermanentWins: on an exact AtNs tie the permanent
// crash must be kept regardless of which plan carries it — the tie must
// not depend on merge order.
func TestMergeCrashTiePermanentWins(t *testing.T) {
	perm := Plan{Crashes: []Crash{{Rank: 1, AtNs: 100, Permanent: true}}}
	trans := Plan{Crashes: []Crash{{Rank: 1, AtNs: 100}}}
	for _, m := range []Plan{perm.Merge(trans), trans.Merge(perm)} {
		if len(m.Crashes) != 1 || !m.Crashes[0].Permanent {
			t.Fatalf("tie lost the permanent flag: %+v", m.Crashes)
		}
	}
	// An earlier transient still beats a later permanent — earliest wins
	// first, the flag only breaks exact ties.
	early := Plan{Crashes: []Crash{{Rank: 1, AtNs: 50}}}
	m := perm.Merge(early)
	if len(m.Crashes) != 1 || m.Crashes[0].Permanent || m.Crashes[0].AtNs != 50 {
		t.Fatalf("earliest-wins broken: %+v", m.Crashes)
	}
}

// TestPermanentAndHeartbeatJSONRoundTrip: the robustness fields survive
// the plan's JSON encoding, and a transient crash still omits them.
func TestPermanentAndHeartbeatJSONRoundTrip(t *testing.T) {
	p := Plan{
		HeartbeatPeriodNs: 2.5e5,
		DetectTimeoutNs:   1e6,
		Crashes:           []Crash{{Rank: 2, AtNs: 1e6, Permanent: true}, {Rank: 5, AtNs: 3e6}},
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Plan
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if q.HeartbeatPeriodNs != p.HeartbeatPeriodNs || len(q.Crashes) != 2 ||
		q.Crashes[0] != p.Crashes[0] || q.Crashes[1] != p.Crashes[1] {
		t.Errorf("round trip lost data: %+v -> %s -> %+v", p, data, q)
	}
	if strings.Contains(string(data), `"permanent":false`) {
		t.Errorf("transient crash serialized a permanent field: %s", data)
	}
}
