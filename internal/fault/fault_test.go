package fault

import (
	"encoding/json"
	"math"
	"testing"
)

func TestPlanEmpty(t *testing.T) {
	if !(Plan{}).Empty() {
		t.Error("zero Plan not Empty")
	}
	if !(Plan{Seed: 7}).Empty() {
		t.Error("seed alone should not make a plan non-empty")
	}
	cases := []Plan{
		{BW: []BWEvent{{Node: 0, Factor: 0.5}}},
		{Stragglers: []Straggler{{Rank: 0, Factor: 2}}},
		{JitterMaxNs: 10},
		{Crashes: []Crash{{Rank: 0, AtNs: 1}}},
	}
	for i, p := range cases {
		if p.Empty() {
			t.Errorf("case %d: plan reported Empty", i)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{BW: []BWEvent{{Node: 0, Factor: 0}}},
		{BW: []BWEvent{{Node: 0, Factor: 1.5}}},          // the 80-for-0.8 typo class
		{BW: []BWEvent{{Node: 0, Factor: 0.5, FromNs: -1}}},
		{BW: []BWEvent{{Node: 0, Factor: 0.5, FromNs: 5, UntilNs: 5}}},
		{Stragglers: []Straggler{{Rank: 0, Factor: 0}}},
		{Stragglers: []Straggler{{Rank: 4, Factor: 2}}},
		{Stragglers: []Straggler{{Rank: -1, Factor: 2}}},
		{JitterMaxNs: -1},
		{Crashes: []Crash{{Rank: 4, AtNs: 1}}},
		{Crashes: []Crash{{Rank: 0, AtNs: -1}}},
		{DetectTimeoutNs: -1},
	}
	for i, p := range bad {
		if err := p.Validate(4); err == nil {
			t.Errorf("bad plan %d validated: %+v", i, p)
		}
	}
	good := Plan{
		Seed:            1,
		BW:              []BWEvent{{Node: 99, Src: -1, Dst: -1, Factor: 0.5}}, // out-of-cluster node never matches, like WeakNode on small runs
		Stragglers:      []Straggler{{Rank: 3, Factor: 4}},
		JitterMaxNs:     50,
		Crashes:         []Crash{{Rank: 0, AtNs: 1e6}},
		DetectTimeoutNs: 100,
	}
	if err := good.Validate(4); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
}

func TestWeakNodePlan(t *testing.T) {
	if !WeakNode(-1, 0.8).Empty() {
		t.Error("WeakNode(-1) should be empty")
	}
	p := WeakNode(2, 0.5)
	in, err := NewInjector(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f := in.LinkFactor(2, 0, 0); f != 0.5 {
		t.Errorf("src weak: factor %g, want 0.5", f)
	}
	if f := in.LinkFactor(0, 2, 1e12); f != 0.5 {
		t.Errorf("dst weak, forever: factor %g, want 0.5", f)
	}
	if f := in.LinkFactor(0, 1, 0); f != 1 {
		t.Errorf("unrelated link: factor %g, want exactly 1", f)
	}
}

func TestLinkFactorWindowsAndScope(t *testing.T) {
	p := Plan{BW: []BWEvent{
		{Node: 1, Src: -1, Dst: -1, Factor: 0.5, FromNs: 100, UntilNs: 200}, // brown-out
		{Node: -1, Src: 0, Dst: 2, Factor: 0.25},                           // directed link, forever
	}}
	in, err := NewInjector(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f := in.LinkFactor(1, 0, 50); f != 1 {
		t.Errorf("before window: %g", f)
	}
	if f := in.LinkFactor(1, 0, 100); f != 0.5 {
		t.Errorf("window start inclusive: %g", f)
	}
	if f := in.LinkFactor(0, 1, 199); f != 0.5 {
		t.Errorf("inside window (either endpoint): %g", f)
	}
	if f := in.LinkFactor(1, 0, 200); f != 1 {
		t.Errorf("window end exclusive: %g", f)
	}
	if f := in.LinkFactor(0, 2, 1e9); f != 0.25 {
		t.Errorf("directed link: %g", f)
	}
	if f := in.LinkFactor(2, 0, 1e9); f != 1 {
		t.Errorf("reverse of directed link: %g", f)
	}
	// src=1 dst=2 matches the node-1 brown-out but not the 0->2 link
	// event: only the brown-out applies.
	if f := in.LinkFactor(1, 2, 150); f != 0.5 {
		t.Errorf("endpoint-1 transfer at 150: %g, want 0.5", f)
	}
	p2 := Plan{BW: []BWEvent{
		{Node: 0, Src: -1, Dst: -1, Factor: 0.5},
		{Node: -1, Src: 0, Dst: 1, Factor: 0.5},
	}}
	in2, err := NewInjector(p2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f := in2.LinkFactor(0, 1, 0); f != 0.25 {
		t.Errorf("overlapping events should multiply: %g, want 0.25", f)
	}
}

func TestComputeScale(t *testing.T) {
	p := Plan{Stragglers: []Straggler{{Rank: 1, Factor: 2}, {Rank: 1, Factor: 3}}}
	in, err := NewInjector(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s := in.ComputeScale(0); s != 1 {
		t.Errorf("rank 0 scale %g, want exactly 1", s)
	}
	if s := in.ComputeScale(1); s != 6 {
		t.Errorf("rank 1 scale %g, want 6 (entries multiply)", s)
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	in, err := NewInjector(Plan{Seed: 42, JitterMaxNs: 100}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	distinct := false
	for i := 0; i < 1000; i++ {
		sent := float64(i) * 17.5
		j := in.JitterNs(1, 2, sent, int64(i))
		if j < 0 || j >= 100 {
			t.Fatalf("jitter %g outside [0, 100)", j)
		}
		if j2 := in.JitterNs(1, 2, sent, int64(i)); j2 != j {
			t.Fatalf("jitter not deterministic: %g then %g", j, j2)
		}
		if i > 0 && j != prev {
			distinct = true
		}
		prev = j
	}
	if !distinct {
		t.Error("jitter constant across messages")
	}
	// A different seed gives a different draw for the same message.
	in2, _ := NewInjector(Plan{Seed: 43, JitterMaxNs: 100}, 0)
	if in.JitterNs(1, 2, 17.5, 1) == in2.JitterNs(1, 2, 17.5, 1) {
		t.Error("seed does not drive the jitter hash")
	}
}

func TestJitterOffIsExactlyZero(t *testing.T) {
	in, err := NewInjector(Plan{Seed: 42}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if j := in.JitterNs(0, 1, 123.4, 5); j != 0 {
		t.Errorf("jitter with JitterMaxNs=0: %g, want exactly 0", j)
	}
	var nilInj *Injector
	if nilInj.JitterNs(0, 1, 1, 1) != 0 || nilInj.LinkFactor(0, 1, 0) != 1 || nilInj.ComputeScale(0) != 1 {
		t.Error("nil injector must be the identity")
	}
}

func TestCrashScheduleAndDisarm(t *testing.T) {
	p := Plan{Crashes: []Crash{{Rank: 2, AtNs: 500}, {Rank: 2, AtNs: 100}}}
	in, err := NewInjector(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := in.NextCrash(0); ok {
		t.Error("rank 0 has no crash scheduled")
	}
	at, ok := in.NextCrash(2)
	if !ok || at != 100 {
		t.Errorf("NextCrash(2) = %g, %v; want 100, true (sorted ascending)", at, ok)
	}
	in.Disarm(2, 100)
	at, ok = in.NextCrash(2)
	if !ok || at != 500 {
		t.Errorf("after disarm: NextCrash(2) = %g, %v; want 500, true", at, ok)
	}
	in.Disarm(2, 500)
	if _, ok := in.NextCrash(2); ok {
		t.Error("all crashes disarmed but NextCrash still fires")
	}
}

func TestMerge(t *testing.T) {
	a := Plan{Seed: 1, BW: []BWEvent{{Node: 0, Factor: 0.5}}, JitterMaxNs: 10}
	b := Plan{Seed: 2, Stragglers: []Straggler{{Rank: 0, Factor: 2}}, JitterMaxNs: 5, DetectTimeoutNs: 99}
	m := a.Merge(b)
	if m.Seed != 2 {
		t.Errorf("Seed = %d, want o's 2", m.Seed)
	}
	if len(m.BW) != 1 || len(m.Stragglers) != 1 {
		t.Errorf("merged lists: %d bw, %d stragglers", len(m.BW), len(m.Stragglers))
	}
	if m.JitterMaxNs != 10 {
		t.Errorf("JitterMaxNs = %g, want max 10", m.JitterMaxNs)
	}
	if m.DetectTimeoutNs != 99 {
		t.Errorf("DetectTimeoutNs = %g, want 99", m.DetectTimeoutNs)
	}
	// Merge does not alias the inputs.
	m.BW[0].Factor = 0.9
	if a.BW[0].Factor != 0.5 {
		t.Error("Merge aliased the receiver's BW slice")
	}
}

func TestDetectTimeoutDefault(t *testing.T) {
	in, _ := NewInjector(Plan{}, 0)
	if in.DetectTimeoutNs() != DefaultDetectTimeoutNs {
		t.Errorf("default detect timeout = %g", in.DetectTimeoutNs())
	}
	in2, _ := NewInjector(Plan{DetectTimeoutNs: 5}, 0)
	if in2.DetectTimeoutNs() != 5 {
		t.Errorf("plan detect timeout = %g, want 5", in2.DetectTimeoutNs())
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p := Plan{
		Seed:        9,
		BW:          []BWEvent{{Node: 3, Src: -1, Dst: -1, Factor: 0.8, FromNs: 10, UntilNs: 20}},
		Stragglers:  []Straggler{{Rank: 1, Factor: 1.5}},
		JitterMaxNs: 25,
		Crashes:     []Crash{{Rank: 0, AtNs: 1e6}},
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Plan
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if q.Seed != p.Seed || len(q.BW) != 1 || q.BW[0] != p.BW[0] ||
		len(q.Stragglers) != 1 || q.Stragglers[0] != p.Stragglers[0] ||
		q.JitterMaxNs != p.JitterMaxNs || len(q.Crashes) != 1 || q.Crashes[0] != p.Crashes[0] {
		t.Errorf("round trip lost data: %+v -> %s -> %+v", p, data, q)
	}
}

func TestErrorMessage(t *testing.T) {
	e := &Error{Rank: 3, AtNs: 1.5e6}
	if e.Error() == "" || math.IsNaN(e.AtNs) {
		t.Error("empty error message")
	}
}
