// Package fault defines deterministic fault-injection plans for the
// simulated NUMA cluster: scheduled bandwidth degradation of nodes or
// individual links (including transient NIC brown-outs), straggler
// ranks whose computation runs slow by a constant factor, per-message
// latency jitter, rank crashes at a chosen virtual time, and lossy
// links (Loss) whose frames drop, duplicate, reorder or corrupt —
// served by the reliable transport under internal/mpi.
//
// A Plan is pure data — JSON-serializable so cmd/bfsbench can load one
// from a file — and everything it injects is a function of the plan, its
// seed, and virtual time only. Two runs of the same workload under the
// same plan produce bit-identical virtual-time results regardless of
// host scheduling or core count, exactly like the unperturbed simulator.
// An empty plan is guaranteed to be a no-op: every hook short-circuits
// before touching a float, so results are bit-identical to a build
// without injection support.
//
// The paper's one "ill-performing node" (Config.WeakNode, excluded from
// Figs. 13-14 in the original evaluation) is the degenerate case: a
// single permanent node-scoped bandwidth event, see WeakNode.
package fault

import (
	"fmt"
	"math"
	"sort"

	"numabfs/internal/xrand"
)

// DefaultDetectTimeoutNs is the modelled failure-detection latency
// charged before a crash recovery begins when the plan does not set one:
// the time between a rank dying and the survivors observing the loss
// (MPI implementations detect peer death through transport timeouts).
const DefaultDetectTimeoutNs = 1e6

// Reliable-transport tuning defaults, used when a plan with Loss events
// leaves the corresponding field zero. The retransmission timeout is an
// order of magnitude above the inter-node round trip (2 x 2000 ns alpha
// plus transfer time), so a healthy link never times out spuriously; the
// backoff doubles the timeout per retry; the retry budget bounds total
// transmissions of one frame before the sender declares the link dead.
const (
	DefaultRetransmitTimeoutNs = 20e3
	DefaultRetransmitBackoff   = 2.0
	DefaultRetryBudget         = 16
)

// BWEvent degrades bandwidth on part of the interconnect during a
// virtual-time window. Node-scoped events (Node >= 0) affect every
// inter-node transfer with an endpoint on that node — the weak-node /
// NIC-brown-out shape; link-scoped events (Node < 0) match transfers
// from Src to Dst, either of which may be -1 for "any". Intra-node
// (shared-memory) traffic is never affected: the faults modelled here
// live on the network path. Overlapping active events multiply.
type BWEvent struct {
	Node    int     `json:"node"`               // >= 0: either endpoint on this node
	Src     int     `json:"src"`                // link scope when Node < 0; -1 = any
	Dst     int     `json:"dst"`                // link scope when Node < 0; -1 = any
	Factor  float64 `json:"factor"`             // bandwidth multiplier in (0, 1]
	FromNs  float64 `json:"from_ns"`            // window start (virtual ns)
	UntilNs float64 `json:"until_ns,omitempty"` // window end; <= 0 means forever
}

// active reports whether the event applies to a transfer from srcNode to
// dstNode beginning at virtual time `at`.
func (e *BWEvent) active(srcNode, dstNode int, at float64) bool {
	return scopeActive(e.Node, e.Src, e.Dst, e.FromNs, e.UntilNs, srcNode, dstNode, at)
}

// scopeActive implements the shared event-scope matcher: node scope
// (node >= 0, either endpoint), link scope (node < 0, -1 wildcards) and
// the [from, until) virtual-time window with until <= 0 meaning forever.
func scopeActive(node, src, dst int, fromNs, untilNs float64, srcNode, dstNode int, at float64) bool {
	if at < fromNs || (untilNs > 0 && at >= untilNs) {
		return false
	}
	if node >= 0 {
		return srcNode == node || dstNode == node
	}
	return (src < 0 || src == srcNode) && (dst < 0 || dst == dstNode)
}

// Loss makes part of the interconnect unreliable during a virtual-time
// window: inter-node messages crossing a matching link are dropped,
// duplicated, delivered out of order, or bit-corrupted in transit with
// the given per-message probabilities, forcing the reliable transport
// under internal/mpi to earn delivery through CRCs, acks and
// retransmission. Scope and window follow BWEvent exactly (Node >= 0:
// either endpoint on that node; Node < 0: Src->Dst link with -1
// wildcards; UntilNs <= 0: forever). Intra-node traffic crosses shared
// memory and is never lossy. Where events overlap, drop / duplicate /
// corrupt / reorder probabilities combine as independent hazards
// (1 - prod(1 - p)) and the largest reorder window wins.
//
// An event whose probabilities are all zero still activates the
// transport on its links — sequence numbers, CRCs and acks are charged
// even though nothing is ever lost — which is how the loss sweep
// isolates pure protocol overhead.
type Loss struct {
	Node int `json:"node"`
	Src  int `json:"src"`
	Dst  int `json:"dst"`

	DropProb    float64 `json:"drop_prob,omitempty"`    // frame vanishes in transit
	DupProb     float64 `json:"dup_prob,omitempty"`     // frame delivered twice
	CorruptProb float64 `json:"corrupt_prob,omitempty"` // payload bit flip; CRC catches it, handled as a drop
	ReorderProb float64 `json:"reorder_prob,omitempty"` // frame overtaken; held for resequencing

	// ReorderWindow bounds how many later frames may overtake a reordered
	// one (the resequencing hold is up to ReorderWindow frame slots).
	// Required >= 1 when ReorderProb > 0.
	ReorderWindow int `json:"reorder_window,omitempty"`

	FromNs  float64 `json:"from_ns"`
	UntilNs float64 `json:"until_ns,omitempty"`
}

// active reports whether the event applies to a frame from srcNode to
// dstNode sent at virtual time `at`.
func (e *Loss) active(srcNode, dstNode int, at float64) bool {
	return scopeActive(e.Node, e.Src, e.Dst, e.FromNs, e.UntilNs, srcNode, dstNode, at)
}

// LinkLoss is the combined unreliability of one link at one virtual
// time, as seen by the transport: the per-frame event probabilities and
// the reorder window. The zero LinkLoss is a clean (but still
// transport-framed) link.
type LinkLoss struct {
	Drop    float64
	Dup     float64
	Corrupt float64
	Reorder float64
	Window  int
}

// Straggler multiplies one rank's computation cost: every Proc.Compute
// charge on that rank is scaled by Factor (> 1 slows the rank down).
// Multiple entries for one rank multiply.
type Straggler struct {
	Rank   int     `json:"rank"`
	Factor float64 `json:"factor"`
}

// Crash kills a rank at a virtual time: the rank dies at the first
// operation boundary where its clock reaches AtNs (a long computation
// crossing AtNs is truncated at it). The job aborts with a structured
// *Error instead of an opaque panic, and a checkpointing caller can
// recover and resume.
//
// Permanent marks the rank as never coming back: a transient crash
// (the default) restarts the same rank from a checkpoint, while a
// permanent one removes it from the world — the survivors must finish
// without it, by shrinking the partition or promoting a hot spare
// (bfs.Options.Recovery).
type Crash struct {
	Rank      int     `json:"rank"`
	AtNs      float64 `json:"at_ns"`
	Permanent bool    `json:"permanent,omitempty"`
}

// Plan is one deterministic perturbation schedule. The zero Plan
// injects nothing.
type Plan struct {
	// Seed drives the jitter hash; unrelated to graph-generation seeds.
	Seed uint64 `json:"seed,omitempty"`

	BW         []BWEvent   `json:"bw,omitempty"`
	Stragglers []Straggler `json:"stragglers,omitempty"`

	// JitterMaxNs adds a deterministic pseudo-random latency in
	// [0, JitterMaxNs) to every point-to-point message, drawn by hashing
	// the message identity with Seed.
	JitterMaxNs float64 `json:"jitter_max_ns,omitempty"`

	Crashes []Crash `json:"crashes,omitempty"`

	// DetectTimeoutNs overrides DefaultDetectTimeoutNs for crash
	// recovery; 0 keeps the default. Merge precedence: the other plan's
	// value wins when it sets one (> 0), otherwise the receiver's is
	// kept — the same "o overrides when set" rule as the transport
	// tuning fields below.
	DetectTimeoutNs float64 `json:"detect_timeout_ns,omitempty"`

	// HeartbeatPeriodNs is the modelled lease/heartbeat pitch of the
	// failure detector used for *permanent* crashes: ranks renew a
	// lease every HeartbeatPeriodNs of virtual time, and a permanent
	// death is detected when the lease taken at the last renewal before
	// the crash expires — DetectionTimeNs on the Injector. 0 derives
	// the period as DetectTimeoutNs/4 (four missed beats per lease).
	// Transient crashes keep the simpler historical AtNs +
	// DetectTimeoutNs detection so existing plans reproduce exactly.
	// Merge precedence: the other plan's value wins when set (> 0),
	// like DetectTimeoutNs.
	HeartbeatPeriodNs float64 `json:"heartbeat_period_ns,omitempty"`

	// Loss makes links unreliable; any entry (even all-zero
	// probabilities) switches the reliable transport on for inter-node
	// point-to-point traffic.
	Loss []Loss `json:"loss,omitempty"`

	// Reliable-transport tuning; 0 keeps the Default* constants. These
	// change how the transport paces retries, not whether it runs, so —
	// like DetectTimeoutNs — they do not affect Empty.
	RetransmitTimeoutNs float64 `json:"retransmit_timeout_ns,omitempty"` // first retry timeout
	RetransmitBackoff   float64 `json:"retransmit_backoff,omitempty"`    // timeout multiplier per retry, >= 1
	RetryBudget         int     `json:"retry_budget,omitempty"`          // max transmissions per frame
}

// Empty reports whether the plan injects nothing at all. Tuning-only
// fields (DetectTimeoutNs, Retransmit*, RetryBudget) don't count: they
// configure machinery that only engages when events exist.
func (p Plan) Empty() bool {
	return len(p.BW) == 0 && len(p.Stragglers) == 0 &&
		p.JitterMaxNs == 0 && len(p.Crashes) == 0 && len(p.Loss) == 0
}

// Validate checks the plan against a world of `ranks` ranks. Bandwidth
// factors outside (0, 1] are rejected here — never silently clamped —
// so a typo like 80 instead of 0.8 fails loudly instead of disabling
// the event. Node indices beyond the configured cluster are allowed
// (a 16-node plan applied to a 4-node run simply never matches, the
// historical WeakNode semantics); rank-scoped entries must name real
// ranks because they index per-rank state.
func (p Plan) Validate(ranks int) error {
	for i, e := range p.BW {
		if e.Factor <= 0 || e.Factor > 1 {
			return fmt.Errorf("fault: bw event %d: factor %g outside (0, 1]", i, e.Factor)
		}
		if e.FromNs < 0 {
			return fmt.Errorf("fault: bw event %d: negative start %g", i, e.FromNs)
		}
		if e.UntilNs > 0 && e.UntilNs <= e.FromNs {
			return fmt.Errorf("fault: bw event %d: window [%g, %g) is empty", i, e.FromNs, e.UntilNs)
		}
	}
	for i, s := range p.Stragglers {
		if s.Factor <= 0 {
			return fmt.Errorf("fault: straggler %d: factor %g must be positive", i, s.Factor)
		}
		if s.Rank < 0 || s.Rank >= ranks {
			return fmt.Errorf("fault: straggler %d: rank %d outside [0, %d)", i, s.Rank, ranks)
		}
	}
	if p.JitterMaxNs < 0 {
		return fmt.Errorf("fault: negative JitterMaxNs %g", p.JitterMaxNs)
	}
	for i, c := range p.Crashes {
		if c.Rank < 0 || c.Rank >= ranks {
			return fmt.Errorf("fault: crash %d: rank %d outside [0, %d)", i, c.Rank, ranks)
		}
		if c.AtNs < 0 {
			return fmt.Errorf("fault: crash %d: negative time %g", i, c.AtNs)
		}
	}
	if p.DetectTimeoutNs < 0 {
		return fmt.Errorf("fault: negative DetectTimeoutNs %g", p.DetectTimeoutNs)
	}
	if p.HeartbeatPeriodNs < 0 {
		return fmt.Errorf("fault: negative HeartbeatPeriodNs %g", p.HeartbeatPeriodNs)
	}
	for i, e := range p.Loss {
		for _, f := range [...]struct {
			name string
			p    float64
		}{
			{"drop_prob", e.DropProb},
			{"dup_prob", e.DupProb},
			{"corrupt_prob", e.CorruptProb},
			{"reorder_prob", e.ReorderProb},
		} {
			if f.p < 0 || f.p > 1 {
				return fmt.Errorf("fault: loss event %d: %s %g outside [0, 1]", i, f.name, f.p)
			}
		}
		if e.ReorderWindow < 0 {
			return fmt.Errorf("fault: loss event %d: negative reorder window %d", i, e.ReorderWindow)
		}
		if e.ReorderProb > 0 && e.ReorderWindow < 1 {
			return fmt.Errorf("fault: loss event %d: reorder_prob %g needs reorder_window >= 1",
				i, e.ReorderProb)
		}
		if e.FromNs < 0 {
			return fmt.Errorf("fault: loss event %d: negative start %g", i, e.FromNs)
		}
		if e.UntilNs > 0 && e.UntilNs <= e.FromNs {
			return fmt.Errorf("fault: loss event %d: window [%g, %g) is empty", i, e.FromNs, e.UntilNs)
		}
	}
	if p.RetransmitTimeoutNs < 0 {
		return fmt.Errorf("fault: negative RetransmitTimeoutNs %g", p.RetransmitTimeoutNs)
	}
	if p.RetransmitBackoff != 0 && p.RetransmitBackoff < 1 {
		return fmt.Errorf("fault: RetransmitBackoff %g below 1 would shrink timeouts", p.RetransmitBackoff)
	}
	if p.RetryBudget < 0 {
		return fmt.Errorf("fault: negative RetryBudget %d", p.RetryBudget)
	}
	return nil
}

// Merge returns the union of p and o: concatenated event lists, o's
// seed and tuning overrides when set, and the larger jitter bound.
// Tuning fields (DetectTimeoutNs, HeartbeatPeriodNs, Retransmit*,
// RetryBudget) follow one rule: o's value wins when o sets it (> 0),
// otherwise p's survives — an unset field never erases a set one.
// Crashes are deduplicated to the earliest per rank: both plans arming a
// crash for the same rank must yield one fault and one recovery, not a
// recovered run that immediately dies again to the later duplicate. The
// kept crash's Permanent flag travels with it; on an exact AtNs tie a
// permanent crash beats a transient one (losing a rank is the stronger
// fault, and the tie must not depend on plan order).
func (p Plan) Merge(o Plan) Plan {
	m := Plan{
		Seed:                p.Seed,
		BW:                  append(append([]BWEvent(nil), p.BW...), o.BW...),
		Stragglers:          append(append([]Straggler(nil), p.Stragglers...), o.Stragglers...),
		JitterMaxNs:         math.Max(p.JitterMaxNs, o.JitterMaxNs),
		Crashes:             dedupeCrashes(p.Crashes, o.Crashes),
		DetectTimeoutNs:     p.DetectTimeoutNs,
		HeartbeatPeriodNs:   p.HeartbeatPeriodNs,
		Loss:                append(append([]Loss(nil), p.Loss...), o.Loss...),
		RetransmitTimeoutNs: p.RetransmitTimeoutNs,
		RetransmitBackoff:   p.RetransmitBackoff,
		RetryBudget:         p.RetryBudget,
	}
	if o.Seed != 0 {
		m.Seed = o.Seed
	}
	if o.DetectTimeoutNs > 0 {
		m.DetectTimeoutNs = o.DetectTimeoutNs
	}
	if o.HeartbeatPeriodNs > 0 {
		m.HeartbeatPeriodNs = o.HeartbeatPeriodNs
	}
	if o.RetransmitTimeoutNs > 0 {
		m.RetransmitTimeoutNs = o.RetransmitTimeoutNs
	}
	if o.RetransmitBackoff > 0 {
		m.RetransmitBackoff = o.RetransmitBackoff
	}
	if o.RetryBudget > 0 {
		m.RetryBudget = o.RetryBudget
	}
	return m
}

// dedupeCrashes concatenates two crash lists keeping only the earliest
// crash per rank, ordered by rank. The kept crash carries its Permanent
// flag; on an exact time tie, permanent wins regardless of list order.
func dedupeCrashes(a, b []Crash) []Crash {
	n := len(a) + len(b)
	if n == 0 {
		return nil
	}
	earliest := make(map[int]Crash, n)
	for _, list := range [2][]Crash{a, b} {
		for _, c := range list {
			if k, ok := earliest[c.Rank]; !ok || c.AtNs < k.AtNs ||
				(c.AtNs == k.AtNs && c.Permanent && !k.Permanent) {
				earliest[c.Rank] = c
			}
		}
	}
	out := make([]Crash, 0, len(earliest))
	for _, c := range earliest {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// WeakNode returns the plan equivalent of machine.Config's WeakNode
// field: every inter-node transfer touching the node runs at factor of
// normal bandwidth, permanently. A negative node returns the empty
// plan, matching the config's -1-disables convention.
func WeakNode(node int, factor float64) Plan {
	if node < 0 {
		return Plan{}
	}
	return Plan{BW: []BWEvent{{Node: node, Src: -1, Dst: -1, Factor: factor}}}
}

// Lossy returns a plan that makes every inter-node link unreliable at
// the given per-frame drop rate, with duplication, corruption and
// bounded reordering scaled from it — the canonical shape the loss
// sweep (experiments.ExtLoss) and the README examples use. rate 0
// still activates the transport (protocol overhead, no loss).
func Lossy(seed uint64, rate float64) Plan {
	return Plan{
		Seed: seed,
		Loss: []Loss{{
			Node: -1, Src: -1, Dst: -1,
			DropProb:      rate,
			DupProb:       rate / 2,
			CorruptProb:   rate / 4,
			ReorderProb:   rate,
			ReorderWindow: 4,
		}},
	}
}

// ErrorKind distinguishes the modelled failures an Error can carry.
type ErrorKind int

const (
	// KindCrash is a scheduled rank death (Plan.Crashes) — recoverable
	// from a checkpoint, because the rank restarts.
	KindCrash ErrorKind = iota
	// KindLinkLoss is a reliable-transport retry-budget exhaustion: a
	// link so lossy the sender declared its peer unreachable. Not
	// recoverable by checkpoint replay — the link stays dead.
	KindLinkLoss
)

// Error is the structured failure a fault injection produces — the
// replacement for an opaque abort panic, so callers can tell a modelled
// fault from a programming bug and decide whether to recover.
type Error struct {
	Rank int       // the rank that died or gave up
	AtNs float64   // the failure's virtual time
	Kind ErrorKind // what happened; zero value is KindCrash
	// Permanent marks a crash whose rank never returns (Crash.Permanent):
	// recovery must shrink the world or promote a spare instead of
	// restarting the same rank.
	Permanent bool
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Kind == KindLinkLoss {
		return fmt.Sprintf("fault: rank %d exhausted its retry budget at %.0f virtual ns (link peer unreachable)", e.Rank, e.AtNs)
	}
	if e.Permanent {
		return fmt.Sprintf("fault: rank %d died permanently at %.0f virtual ns", e.Rank, e.AtNs)
	}
	return fmt.Sprintf("fault: rank %d crashed at %.0f virtual ns", e.Rank, e.AtNs)
}

// crashEvent is one scheduled crash with its armed state: disarmed
// events (already recovered from) never fire again.
type crashEvent struct {
	at        float64
	armed     bool
	permanent bool
}

// Injector is a Plan compiled for one world. All query methods are safe
// on a nil receiver (returning the identity), cheap when the relevant
// perturbation is absent, and read-only during a run — the only
// mutation, Disarm, happens between recovery attempts when no rank
// goroutine is live.
type Injector struct {
	plan      Plan
	scale     []float64      // per-rank compute multiplier; nil without stragglers
	crashes   [][]crashEvent // per-rank schedule, ascending; nil without crashes
	jitterMax float64
	seed      uint64
}

// NewInjector compiles plan for a world of `ranks` ranks. Plans without
// rank-scoped entries (stragglers, crashes) may pass ranks == 0.
func NewInjector(plan Plan, ranks int) (*Injector, error) {
	if err := plan.Validate(ranks); err != nil {
		return nil, err
	}
	in := &Injector{plan: plan, jitterMax: plan.JitterMaxNs, seed: plan.Seed}
	if len(plan.Stragglers) > 0 {
		in.scale = make([]float64, ranks)
		for i := range in.scale {
			in.scale[i] = 1
		}
		for _, s := range plan.Stragglers {
			in.scale[s.Rank] *= s.Factor
		}
	}
	if len(plan.Crashes) > 0 {
		in.crashes = make([][]crashEvent, ranks)
		for _, c := range plan.Crashes {
			in.crashes[c.Rank] = append(in.crashes[c.Rank], crashEvent{at: c.AtNs, armed: true, permanent: c.Permanent})
		}
		for r := range in.crashes {
			evs := in.crashes[r]
			sort.Slice(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
		}
	}
	return in, nil
}

// Plan returns the compiled plan.
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// DetectTimeoutNs returns the plan's crash-detection latency, or the
// default.
func (in *Injector) DetectTimeoutNs() float64 {
	if in == nil || in.plan.DetectTimeoutNs <= 0 {
		return DefaultDetectTimeoutNs
	}
	return in.plan.DetectTimeoutNs
}

// LinkFactor returns the bandwidth multiplier for an inter-node
// transfer from srcNode to dstNode beginning at virtual time `at`: the
// product of all matching active events, or exactly 1 when none match.
func (in *Injector) LinkFactor(srcNode, dstNode int, at float64) float64 {
	if in == nil || len(in.plan.BW) == 0 {
		return 1
	}
	f := 1.0
	for i := range in.plan.BW {
		if in.plan.BW[i].active(srcNode, dstNode, at) {
			f *= in.plan.BW[i].Factor
		}
	}
	return f
}

// ComputeScale returns the rank's computation-cost multiplier (exactly
// 1 for non-stragglers).
func (in *Injector) ComputeScale(rank int) float64 {
	if in == nil || in.scale == nil {
		return 1
	}
	return in.scale[rank]
}

// JitterNs returns the deterministic latency jitter of one message,
// uniform in [0, JitterMaxNs), or exactly 0 when jitter is off. The
// draw hashes the message identity (endpoints, sender post time, size)
// with the plan seed rather than consuming a stateful stream, so it
// depends only on virtual time — never on delivery order or on how far
// an aborted attempt got before a crash recovery.
func (in *Injector) JitterNs(src, dst int, sentNs float64, bytes int64) float64 {
	if in == nil || in.jitterMax <= 0 {
		return 0
	}
	h := in.seed
	h ^= uint64(src)*0x9e3779b97f4a7c15 + uint64(dst)*0xbf58476d1ce4e5b9
	h ^= math.Float64bits(sentNs) + uint64(bytes)
	u := xrand.NewSplitMix64(h).Uint64()
	return in.jitterMax * (float64(u>>11) / (1 << 53))
}

// Reliable reports whether the plan activates the reliable transport:
// any Loss event, even one with all-zero probabilities, turns framing,
// acks and retransmission on for inter-node point-to-point traffic.
func (in *Injector) Reliable() bool {
	return in != nil && len(in.plan.Loss) > 0
}

// LossAt returns the combined unreliability of the srcNode -> dstNode
// link for a frame sent at virtual time `at`. Overlapping events
// combine as independent hazards; the widest reorder window wins.
func (in *Injector) LossAt(srcNode, dstNode int, at float64) LinkLoss {
	var l LinkLoss
	if in == nil {
		return l
	}
	keepDrop, keepDup, keepCorrupt, keepReorder := 1.0, 1.0, 1.0, 1.0
	for i := range in.plan.Loss {
		e := &in.plan.Loss[i]
		if !e.active(srcNode, dstNode, at) {
			continue
		}
		keepDrop *= 1 - e.DropProb
		keepDup *= 1 - e.DupProb
		keepCorrupt *= 1 - e.CorruptProb
		keepReorder *= 1 - e.ReorderProb
		if e.ReorderWindow > l.Window {
			l.Window = e.ReorderWindow
		}
	}
	l.Drop = 1 - keepDrop
	l.Dup = 1 - keepDup
	l.Corrupt = 1 - keepCorrupt
	l.Reorder = 1 - keepReorder
	return l
}

// Transport-draw purposes: distinct hash lanes so one frame's drop,
// corruption, duplication and reorder fates are independent draws.
const (
	DrawDrop uint64 = iota + 1
	DrawCorrupt
	DrawDup
	DrawReorder
)

// TransportDraw returns a deterministic uniform draw in [0, 1) for one
// transmission attempt of one frame. Like JitterNs, the draw hashes the
// frame identity — endpoints, sender post time, payload size, attempt
// number and purpose — with the plan seed instead of consuming a
// stateful stream, so transport fates depend only on virtual time:
// never on host scheduling, delivery races, or how far an aborted run
// got before crash recovery replayed it.
func (in *Injector) TransportDraw(purpose uint64, src, dst int, sentNs float64, bytes int64, attempt int) float64 {
	h := in.seed ^ purpose*0xd6e8feb86659fd93
	h ^= uint64(src)*0x9e3779b97f4a7c15 + uint64(dst)*0xbf58476d1ce4e5b9
	h ^= math.Float64bits(sentNs) + uint64(bytes)
	h += uint64(attempt) * 0x94d049bb133111eb
	u := xrand.NewSplitMix64(h).Uint64()
	return float64(u>>11) / (1 << 53)
}

// RetransmitTimeoutNs returns the transport's first retry timeout, or
// the default.
func (in *Injector) RetransmitTimeoutNs() float64 {
	if in == nil || in.plan.RetransmitTimeoutNs <= 0 {
		return DefaultRetransmitTimeoutNs
	}
	return in.plan.RetransmitTimeoutNs
}

// RetransmitBackoff returns the per-retry timeout multiplier, or the
// default.
func (in *Injector) RetransmitBackoff() float64 {
	if in == nil || in.plan.RetransmitBackoff <= 0 {
		return DefaultRetransmitBackoff
	}
	return in.plan.RetransmitBackoff
}

// RetryBudget returns the maximum transmissions of one frame before the
// sender gives up, or the default.
func (in *Injector) RetryBudget() int {
	if in == nil || in.plan.RetryBudget <= 0 {
		return DefaultRetryBudget
	}
	return in.plan.RetryBudget
}

// NextCrash returns the virtual time of the earliest still-armed crash
// scheduled for rank, if any.
func (in *Injector) NextCrash(rank int) (float64, bool) {
	if in == nil || in.crashes == nil || rank >= len(in.crashes) {
		return 0, false
	}
	for i := range in.crashes[rank] {
		if in.crashes[rank][i].armed {
			return in.crashes[rank][i].at, true
		}
	}
	return 0, false
}

// CrashPermanent reports whether the armed crash scheduled for rank at
// virtual time `at` is a permanent death (Crash.Permanent).
func (in *Injector) CrashPermanent(rank int, at float64) bool {
	if in == nil || in.crashes == nil || rank >= len(in.crashes) {
		return false
	}
	for i := range in.crashes[rank] {
		if in.crashes[rank][i].armed && in.crashes[rank][i].at == at {
			return in.crashes[rank][i].permanent
		}
	}
	return false
}

// HeartbeatPeriodNs returns the lease/heartbeat pitch of the permanent-
// failure detector: the plan's value, or DetectTimeoutNs()/4 when unset
// (four missed beats expire a lease).
func (in *Injector) HeartbeatPeriodNs() float64 {
	if in != nil && in.plan.HeartbeatPeriodNs > 0 {
		return in.plan.HeartbeatPeriodNs
	}
	return in.DetectTimeoutNs() / 4
}

// DetectionTimeNs returns the virtual time at which the survivors
// observe a permanent death that occurred at `at`, under the modelled
// lease/heartbeat detector: the dead rank's last lease renewal was the
// heartbeat boundary at or before `at`, and that lease expires
// DetectTimeoutNs later. A misconfigured period (longer than the
// timeout) can place the expiry before the crash itself; detection is
// floored at at + DetectTimeoutNs so a death is never "detected" while
// the rank was still alive renewing.
func (in *Injector) DetectionTimeNs(at float64) float64 {
	period := in.HeartbeatPeriodNs()
	beat := math.Floor(at/period) * period
	d := beat + in.DetectTimeoutNs()
	if d < at {
		d = at + in.DetectTimeoutNs()
	}
	return d
}

// Disarm retires the crash scheduled for rank at `at` so a recovered
// run does not die to the same event again. Call only between runs (no
// rank goroutines live).
func (in *Injector) Disarm(rank int, at float64) {
	if in == nil || in.crashes == nil || rank >= len(in.crashes) {
		return
	}
	for i := range in.crashes[rank] {
		if in.crashes[rank][i].armed && in.crashes[rank][i].at == at {
			in.crashes[rank][i].armed = false
			return
		}
	}
}
