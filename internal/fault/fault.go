// Package fault defines deterministic fault-injection plans for the
// simulated NUMA cluster: scheduled bandwidth degradation of nodes or
// individual links (including transient NIC brown-outs), straggler
// ranks whose computation runs slow by a constant factor, per-message
// latency jitter, and rank crashes at a chosen virtual time.
//
// A Plan is pure data — JSON-serializable so cmd/bfsbench can load one
// from a file — and everything it injects is a function of the plan, its
// seed, and virtual time only. Two runs of the same workload under the
// same plan produce bit-identical virtual-time results regardless of
// host scheduling or core count, exactly like the unperturbed simulator.
// An empty plan is guaranteed to be a no-op: every hook short-circuits
// before touching a float, so results are bit-identical to a build
// without injection support.
//
// The paper's one "ill-performing node" (Config.WeakNode, excluded from
// Figs. 13-14 in the original evaluation) is the degenerate case: a
// single permanent node-scoped bandwidth event, see WeakNode.
package fault

import (
	"fmt"
	"math"
	"sort"

	"numabfs/internal/xrand"
)

// DefaultDetectTimeoutNs is the modelled failure-detection latency
// charged before a crash recovery begins when the plan does not set one:
// the time between a rank dying and the survivors observing the loss
// (MPI implementations detect peer death through transport timeouts).
const DefaultDetectTimeoutNs = 1e6

// BWEvent degrades bandwidth on part of the interconnect during a
// virtual-time window. Node-scoped events (Node >= 0) affect every
// inter-node transfer with an endpoint on that node — the weak-node /
// NIC-brown-out shape; link-scoped events (Node < 0) match transfers
// from Src to Dst, either of which may be -1 for "any". Intra-node
// (shared-memory) traffic is never affected: the faults modelled here
// live on the network path. Overlapping active events multiply.
type BWEvent struct {
	Node    int     `json:"node"`              // >= 0: either endpoint on this node
	Src     int     `json:"src"`               // link scope when Node < 0; -1 = any
	Dst     int     `json:"dst"`               // link scope when Node < 0; -1 = any
	Factor  float64 `json:"factor"`            // bandwidth multiplier in (0, 1]
	FromNs  float64 `json:"from_ns"`           // window start (virtual ns)
	UntilNs float64 `json:"until_ns,omitempty"` // window end; <= 0 means forever
}

// active reports whether the event applies to a transfer from srcNode to
// dstNode beginning at virtual time `at`.
func (e *BWEvent) active(srcNode, dstNode int, at float64) bool {
	if at < e.FromNs || (e.UntilNs > 0 && at >= e.UntilNs) {
		return false
	}
	if e.Node >= 0 {
		return srcNode == e.Node || dstNode == e.Node
	}
	return (e.Src < 0 || e.Src == srcNode) && (e.Dst < 0 || e.Dst == dstNode)
}

// Straggler multiplies one rank's computation cost: every Proc.Compute
// charge on that rank is scaled by Factor (> 1 slows the rank down).
// Multiple entries for one rank multiply.
type Straggler struct {
	Rank   int     `json:"rank"`
	Factor float64 `json:"factor"`
}

// Crash kills a rank at a virtual time: the rank dies at the first
// operation boundary where its clock reaches AtNs (a long computation
// crossing AtNs is truncated at it). The job aborts with a structured
// *Error instead of an opaque panic, and a checkpointing caller can
// recover and resume.
type Crash struct {
	Rank int     `json:"rank"`
	AtNs float64 `json:"at_ns"`
}

// Plan is one deterministic perturbation schedule. The zero Plan
// injects nothing.
type Plan struct {
	// Seed drives the jitter hash; unrelated to graph-generation seeds.
	Seed uint64 `json:"seed,omitempty"`

	BW         []BWEvent   `json:"bw,omitempty"`
	Stragglers []Straggler `json:"stragglers,omitempty"`

	// JitterMaxNs adds a deterministic pseudo-random latency in
	// [0, JitterMaxNs) to every point-to-point message, drawn by hashing
	// the message identity with Seed.
	JitterMaxNs float64 `json:"jitter_max_ns,omitempty"`

	Crashes []Crash `json:"crashes,omitempty"`

	// DetectTimeoutNs overrides DefaultDetectTimeoutNs for crash
	// recovery; 0 keeps the default.
	DetectTimeoutNs float64 `json:"detect_timeout_ns,omitempty"`
}

// Empty reports whether the plan injects nothing at all.
func (p Plan) Empty() bool {
	return len(p.BW) == 0 && len(p.Stragglers) == 0 &&
		p.JitterMaxNs == 0 && len(p.Crashes) == 0
}

// Validate checks the plan against a world of `ranks` ranks. Bandwidth
// factors outside (0, 1] are rejected here — never silently clamped —
// so a typo like 80 instead of 0.8 fails loudly instead of disabling
// the event. Node indices beyond the configured cluster are allowed
// (a 16-node plan applied to a 4-node run simply never matches, the
// historical WeakNode semantics); rank-scoped entries must name real
// ranks because they index per-rank state.
func (p Plan) Validate(ranks int) error {
	for i, e := range p.BW {
		if e.Factor <= 0 || e.Factor > 1 {
			return fmt.Errorf("fault: bw event %d: factor %g outside (0, 1]", i, e.Factor)
		}
		if e.FromNs < 0 {
			return fmt.Errorf("fault: bw event %d: negative start %g", i, e.FromNs)
		}
		if e.UntilNs > 0 && e.UntilNs <= e.FromNs {
			return fmt.Errorf("fault: bw event %d: window [%g, %g) is empty", i, e.FromNs, e.UntilNs)
		}
	}
	for i, s := range p.Stragglers {
		if s.Factor <= 0 {
			return fmt.Errorf("fault: straggler %d: factor %g must be positive", i, s.Factor)
		}
		if s.Rank < 0 || s.Rank >= ranks {
			return fmt.Errorf("fault: straggler %d: rank %d outside [0, %d)", i, s.Rank, ranks)
		}
	}
	if p.JitterMaxNs < 0 {
		return fmt.Errorf("fault: negative JitterMaxNs %g", p.JitterMaxNs)
	}
	for i, c := range p.Crashes {
		if c.Rank < 0 || c.Rank >= ranks {
			return fmt.Errorf("fault: crash %d: rank %d outside [0, %d)", i, c.Rank, ranks)
		}
		if c.AtNs < 0 {
			return fmt.Errorf("fault: crash %d: negative time %g", i, c.AtNs)
		}
	}
	if p.DetectTimeoutNs < 0 {
		return fmt.Errorf("fault: negative DetectTimeoutNs %g", p.DetectTimeoutNs)
	}
	return nil
}

// Merge returns the union of p and o: concatenated event lists, o's
// seed and detection timeout when set, and the larger jitter bound.
func (p Plan) Merge(o Plan) Plan {
	m := Plan{
		Seed:            p.Seed,
		BW:              append(append([]BWEvent(nil), p.BW...), o.BW...),
		Stragglers:      append(append([]Straggler(nil), p.Stragglers...), o.Stragglers...),
		JitterMaxNs:     math.Max(p.JitterMaxNs, o.JitterMaxNs),
		Crashes:         append(append([]Crash(nil), p.Crashes...), o.Crashes...),
		DetectTimeoutNs: p.DetectTimeoutNs,
	}
	if o.Seed != 0 {
		m.Seed = o.Seed
	}
	if o.DetectTimeoutNs > 0 {
		m.DetectTimeoutNs = o.DetectTimeoutNs
	}
	return m
}

// WeakNode returns the plan equivalent of machine.Config's WeakNode
// field: every inter-node transfer touching the node runs at factor of
// normal bandwidth, permanently. A negative node returns the empty
// plan, matching the config's -1-disables convention.
func WeakNode(node int, factor float64) Plan {
	if node < 0 {
		return Plan{}
	}
	return Plan{BW: []BWEvent{{Node: node, Src: -1, Dst: -1, Factor: factor}}}
}

// Error is the structured failure a crash injection produces — the
// replacement for an opaque abort panic, so callers can tell a modelled
// fault from a programming bug and decide to recover.
type Error struct {
	Rank int     // the crashed rank
	AtNs float64 // the crash's scheduled virtual time (from the Plan)
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("fault: rank %d crashed at %.0f virtual ns", e.Rank, e.AtNs)
}

// crashEvent is one scheduled crash with its armed state: disarmed
// events (already recovered from) never fire again.
type crashEvent struct {
	at    float64
	armed bool
}

// Injector is a Plan compiled for one world. All query methods are safe
// on a nil receiver (returning the identity), cheap when the relevant
// perturbation is absent, and read-only during a run — the only
// mutation, Disarm, happens between recovery attempts when no rank
// goroutine is live.
type Injector struct {
	plan      Plan
	scale     []float64      // per-rank compute multiplier; nil without stragglers
	crashes   [][]crashEvent // per-rank schedule, ascending; nil without crashes
	jitterMax float64
	seed      uint64
}

// NewInjector compiles plan for a world of `ranks` ranks. Plans without
// rank-scoped entries (stragglers, crashes) may pass ranks == 0.
func NewInjector(plan Plan, ranks int) (*Injector, error) {
	if err := plan.Validate(ranks); err != nil {
		return nil, err
	}
	in := &Injector{plan: plan, jitterMax: plan.JitterMaxNs, seed: plan.Seed}
	if len(plan.Stragglers) > 0 {
		in.scale = make([]float64, ranks)
		for i := range in.scale {
			in.scale[i] = 1
		}
		for _, s := range plan.Stragglers {
			in.scale[s.Rank] *= s.Factor
		}
	}
	if len(plan.Crashes) > 0 {
		in.crashes = make([][]crashEvent, ranks)
		for _, c := range plan.Crashes {
			in.crashes[c.Rank] = append(in.crashes[c.Rank], crashEvent{at: c.AtNs, armed: true})
		}
		for r := range in.crashes {
			evs := in.crashes[r]
			sort.Slice(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
		}
	}
	return in, nil
}

// Plan returns the compiled plan.
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// DetectTimeoutNs returns the plan's crash-detection latency, or the
// default.
func (in *Injector) DetectTimeoutNs() float64 {
	if in == nil || in.plan.DetectTimeoutNs <= 0 {
		return DefaultDetectTimeoutNs
	}
	return in.plan.DetectTimeoutNs
}

// LinkFactor returns the bandwidth multiplier for an inter-node
// transfer from srcNode to dstNode beginning at virtual time `at`: the
// product of all matching active events, or exactly 1 when none match.
func (in *Injector) LinkFactor(srcNode, dstNode int, at float64) float64 {
	if in == nil || len(in.plan.BW) == 0 {
		return 1
	}
	f := 1.0
	for i := range in.plan.BW {
		if in.plan.BW[i].active(srcNode, dstNode, at) {
			f *= in.plan.BW[i].Factor
		}
	}
	return f
}

// ComputeScale returns the rank's computation-cost multiplier (exactly
// 1 for non-stragglers).
func (in *Injector) ComputeScale(rank int) float64 {
	if in == nil || in.scale == nil {
		return 1
	}
	return in.scale[rank]
}

// JitterNs returns the deterministic latency jitter of one message,
// uniform in [0, JitterMaxNs), or exactly 0 when jitter is off. The
// draw hashes the message identity (endpoints, sender post time, size)
// with the plan seed rather than consuming a stateful stream, so it
// depends only on virtual time — never on delivery order or on how far
// an aborted attempt got before a crash recovery.
func (in *Injector) JitterNs(src, dst int, sentNs float64, bytes int64) float64 {
	if in == nil || in.jitterMax <= 0 {
		return 0
	}
	h := in.seed
	h ^= uint64(src)*0x9e3779b97f4a7c15 + uint64(dst)*0xbf58476d1ce4e5b9
	h ^= math.Float64bits(sentNs) + uint64(bytes)
	u := xrand.NewSplitMix64(h).Uint64()
	return in.jitterMax * (float64(u>>11) / (1 << 53))
}

// NextCrash returns the virtual time of the earliest still-armed crash
// scheduled for rank, if any.
func (in *Injector) NextCrash(rank int) (float64, bool) {
	if in == nil || in.crashes == nil || rank >= len(in.crashes) {
		return 0, false
	}
	for i := range in.crashes[rank] {
		if in.crashes[rank][i].armed {
			return in.crashes[rank][i].at, true
		}
	}
	return 0, false
}

// Disarm retires the crash scheduled for rank at `at` so a recovered
// run does not die to the same event again. Call only between runs (no
// rank goroutines live).
func (in *Injector) Disarm(rank int, at float64) {
	if in == nil || in.crashes == nil || rank >= len(in.crashes) {
		return
	}
	for i := range in.crashes[rank] {
		if in.crashes[rank][i].armed && in.crashes[rank][i].at == at {
			in.crashes[rank][i].armed = false
			return
		}
	}
}
