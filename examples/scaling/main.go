// Weak-scaling study: reproduce the paper's evaluation methodology on a
// sweep of cluster sizes — double the graph with the node count (as the
// paper does from scale 28 on one node to scale 32 on sixteen) and watch
// how each optimization level scales. This is Fig. 15 as a library
// client would write it.
package main

import (
	"fmt"
	"log"

	"numabfs"
)

func main() {
	const baseScale = 14
	nodeCounts := []int{1, 2, 4, 8}

	variants := []struct {
		name   string
		policy numabfs.Policy
		opt    numabfs.Options
	}{
		{"Original.ppn=1", numabfs.PPN1Interleave, withOpt(numabfs.OptOriginal, 64)},
		{"Original.ppn=8", numabfs.PPN8Bind, withOpt(numabfs.OptOriginal, 64)},
		{"Share all", numabfs.PPN8Bind, withOpt(numabfs.OptShareAll, 64)},
		{"Par allgather g=256", numabfs.PPN8Bind, withOpt(numabfs.OptParAllgather, 256)},
	}

	fmt.Printf("weak scaling: scale %d per node, harmonic-mean TEPS\n\n", baseScale)
	fmt.Printf("%-22s", "")
	for _, nodes := range nodeCounts {
		fmt.Printf("%14s", fmt.Sprintf("%d node(s)", nodes))
	}
	fmt.Println()

	for _, v := range variants {
		fmt.Printf("%-22s", v.name)
		for i, nodes := range nodeCounts {
			scale := baseScale + i // weak scaling: double graph per doubling
			cfg := numabfs.ScaledCluster(scale, scale+12).WithNodes(nodes)
			res, err := numabfs.Run(numabfs.Benchmark{
				Machine:  cfg,
				Policy:   v.policy,
				Params:   numabfs.Graph500Params(scale),
				Opts:     v.opt,
				NumRoots: 4,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%14.3e", res.HarmonicTEPS)
		}
		fmt.Println()
	}
	fmt.Println("\nperfect weak scaling doubles TEPS per row step; communication cost")
	fmt.Println("is what bends the curves — compare the bottom rows with Original.ppn=8.")
}

func withOpt(opt numabfs.OptLevel, g int64) numabfs.Options {
	o := numabfs.DefaultOptions()
	o.Opt = opt
	o.Granularity = g
	return o
}
