// Social-network analysis: the paper's introduction motivates BFS with
// graph analytics on social networks. This example treats an R-MAT graph
// as a synthetic social network and uses the distributed BFS to compute
// degrees-of-separation statistics from several seed users: how much of
// the network each seed reaches, and how the reached population spreads
// over hop counts (the classic "six degrees" histogram).
package main

import (
	"fmt"
	"log"

	"numabfs"
)

func main() {
	const scale = 14
	cfg := numabfs.ScaledCluster(scale, scale+12)
	cfg.Nodes = 2
	params := numabfs.Graph500Params(scale)

	opts := numabfs.DefaultOptions()
	opts.Opt = numabfs.OptShareAll

	r, err := numabfs.NewRunner(cfg, numabfs.PPN8Bind, params, opts)
	if err != nil {
		log.Fatal(err)
	}
	r.Setup()

	seeds := params.Roots(4, r.HasEdgeGlobal)
	n := params.NumVertices()

	fmt.Printf("synthetic social network: %d users, ~%d relationships\n\n", n, params.NumEdges())
	for _, seed := range seeds {
		res := r.RunRoot(seed)
		if err := numabfs.Validate(r, seed); err != nil {
			log.Fatalf("seed %d: %v", seed, err)
		}
		hops := hopHistogram(r, seed)

		fmt.Printf("seed user %d:\n", seed)
		fmt.Printf("  reached %d of %d users (%.1f%%) in %d hops, %.2f ms virtual (%.2e TEPS)\n",
			res.Visited, n, 100*float64(res.Visited)/float64(n),
			len(hops)-1, res.TimeNs/1e6, res.TEPS)
		cum := int64(0)
		for h, c := range hops {
			cum += c
			fmt.Printf("  %2d hop(s): %8d users  (%.1f%% cumulative) %s\n",
				h, c, 100*float64(cum)/float64(res.Visited), bar(c, res.Visited))
		}
		fmt.Println()
	}
}

// hopHistogram counts reached users per BFS level by walking each rank's
// parent array up to the root.
func hopHistogram(r *numabfs.Runner, root int64) []int64 {
	n := r.Params.NumVertices()
	parent := make([]int64, n)
	for rank, pa := range r.ParentArrays() {
		lo, _ := r.Part.Range(rank)
		copy(parent[lo:lo+int64(len(pa))], pa)
	}
	level := make([]int64, n)
	for i := range level {
		level[i] = -1
	}
	level[root] = 0
	maxLevel := int64(0)
	for changed := true; changed; {
		changed = false
		for v := int64(0); v < n; v++ {
			if level[v] >= 0 || parent[v] < 0 {
				continue
			}
			if pl := level[parent[v]]; pl >= 0 {
				level[v] = pl + 1
				if level[v] > maxLevel {
					maxLevel = level[v]
				}
				changed = true
			}
		}
	}
	hist := make([]int64, maxLevel+1)
	for _, l := range level {
		if l >= 0 {
			hist[l]++
		}
	}
	return hist
}

func bar(c, total int64) string {
	if total == 0 {
		return ""
	}
	w := int(40 * c / total)
	out := make([]byte, w)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
