// Quickstart: run the paper's optimized BFS on a small R-MAT graph over
// the simulated 16-node NUMA cluster and print TEPS for the baseline and
// the fully optimized configuration — a miniature of the paper's
// headline 2.44x result.
package main

import (
	"fmt"
	"log"

	"numabfs"
)

func main() {
	const scale = 14 // 16k vertices, 256k edges: fast everywhere

	// The paper's cluster, proportionally scaled to this graph size.
	cfg := numabfs.ScaledCluster(scale, scale+12)
	cfg.Nodes = 4
	params := numabfs.Graph500Params(scale)

	// Baseline: one interleaved MPI rank per node, no optimizations.
	base, err := numabfs.Run(numabfs.Benchmark{
		Machine:  cfg,
		Policy:   numabfs.PPN1Interleave,
		Params:   params,
		Opts:     numabfs.DefaultOptions(),
		NumRoots: 8,
		Validate: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Fully optimized: one bound rank per socket, shared bitmaps,
	// parallelized allgather, tuned summary granularity.
	opts := numabfs.DefaultOptions()
	opts.Opt = numabfs.OptParAllgather
	opts.Granularity = 256
	best, err := numabfs.Run(numabfs.Benchmark{
		Machine:  cfg,
		Policy:   numabfs.PPN8Bind,
		Params:   params,
		Opts:     opts,
		NumRoots: 8,
		Validate: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("R-MAT scale %d on %d simulated NUMA nodes (%d cores)\n",
		scale, cfg.Nodes, cfg.Nodes*cfg.SocketsPerNode*cfg.CoresPerSocket)
	fmt.Printf("  baseline   (ppn=1, interleave):            %.3e TEPS\n", base.HarmonicTEPS)
	fmt.Printf("  optimized  (ppn=8 bind + share + par + g): %.3e TEPS\n", best.HarmonicTEPS)
	fmt.Printf("  speedup: %.2fx  (all BFS trees validated)\n", best.HarmonicTEPS/base.HarmonicTEPS)
}
