// Connected components: BFS is the key subroutine for connected-
// component analysis (one of the graph algorithms the paper's
// introduction lists). This example decomposes an R-MAT graph into
// components by repeatedly running the distributed BFS from a vertex not
// yet assigned to any component, then reports the component size
// distribution — R-MAT graphs have one giant component plus a long tail
// of isolated vertices.
package main

import (
	"fmt"
	"log"
	"sort"

	"numabfs"
)

func main() {
	const scale = 12
	cfg := numabfs.ScaledCluster(scale, scale+12)
	cfg.Nodes = 2
	params := numabfs.Graph500Params(scale)

	opts := numabfs.DefaultOptions()
	opts.Opt = numabfs.OptParAllgather

	r, err := numabfs.NewRunner(cfg, numabfs.PPN8Bind, params, opts)
	if err != nil {
		log.Fatal(err)
	}
	r.Setup()

	n := params.NumVertices()
	comp := make([]int64, n) // component id per vertex; -1 = unassigned
	for i := range comp {
		comp[i] = -1
	}

	var sizes []int64
	var isolated int64
	var totalVirtualMs float64
	next := int64(0)
	for {
		// Find the next unassigned vertex; vertices without edges are
		// their own singleton components.
		for next < n && comp[next] >= 0 {
			next++
		}
		if next >= n {
			break
		}
		if !r.HasEdgeGlobal(next) {
			comp[next] = int64(len(sizes)) + 1_000_000 // singleton marker
			isolated++
			continue
		}

		res := r.RunRoot(next)
		totalVirtualMs += res.TimeNs / 1e6
		id := int64(len(sizes))
		var size int64
		for rank, pa := range r.ParentArrays() {
			lo, _ := r.Part.Range(rank)
			for i, p := range pa {
				if p >= 0 && comp[lo+int64(i)] < 0 {
					comp[lo+int64(i)] = id
					size++
				}
			}
		}
		sizes = append(sizes, size)
	}

	sort.Slice(sizes, func(i, j int) bool { return sizes[i] > sizes[j] })
	fmt.Printf("graph: %d vertices, ~%d edges\n", n, params.NumEdges())
	fmt.Printf("components with edges: %d;  isolated vertices: %d\n", len(sizes), isolated)
	fmt.Printf("giant component: %d vertices (%.1f%% of the graph)\n",
		sizes[0], 100*float64(sizes[0])/float64(n))
	show := len(sizes)
	if show > 8 {
		show = 8
	}
	fmt.Printf("largest components: %v\n", sizes[:show])
	fmt.Printf("total BFS time (virtual): %.2f ms across %d traversals\n",
		totalVirtualMs, len(sizes))
}
