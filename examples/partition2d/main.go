// 1-D vs 2-D partitioning: the paper's related work notes that the
// two-dimensional BFS of Buluç and Madduri attacks the same
// communication problem from an orthogonal angle. This example runs both
// engines on the same graph and simulated cluster and compares TEPS and
// measured communication volume — showing why the paper's hybrid wins
// anyway (it skips most top-down traffic), and how much the 2-D layout
// helps a pure top-down traversal.
package main

import (
	"fmt"
	"log"

	"numabfs"
)

func main() {
	const scale = 14
	const nodes = 4
	cfg := numabfs.ScaledCluster(scale, scale+12).WithNodes(nodes)
	params := numabfs.Graph500Params(scale)
	ranks := nodes * cfg.SocketsPerNode

	// 1-D engine, pure top-down (the algorithm 2-D partitioning targets).
	opts := numabfs.DefaultOptions()
	opts.Mode = numabfs.ModeTopDown
	oneD, err := numabfs.NewRunner(cfg, numabfs.PPN8Bind, params, opts)
	if err != nil {
		log.Fatal(err)
	}
	oneD.Setup()

	// 2-D engine on the same cluster.
	grid := numabfs.DefaultGrid(ranks)
	twoD, err := numabfs.NewRunner2D(cfg, numabfs.PPN8Bind, grid, params)
	if err != nil {
		log.Fatal(err)
	}
	twoD.Setup()

	// And the paper's hybrid, for perspective.
	hybrid, err := numabfs.NewRunner(cfg, numabfs.PPN8Bind, params, numabfs.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	hybrid.Setup()

	roots := params.Roots(4, oneD.HasEdgeGlobal)
	fmt.Printf("scale %d, %d nodes, %d ranks; 2-D grid %dx%d\n\n", scale, nodes, ranks, grid.R, grid.C)
	fmt.Printf("%-26s %12s %14s\n", "", "TEPS", "comm MB/iter")
	var teps1, teps2, tepsH, mb1, mb2, mbH float64
	for _, root := range roots {
		r1 := oneD.RunRoot(root)
		r2 := twoD.RunRoot(root)
		rh := hybrid.RunRoot(root)
		if r1.Visited != r2.Visited || r1.Visited != rh.Visited {
			log.Fatalf("engines disagree on reachability from %d: %d vs %d vs %d",
				root, r1.Visited, r2.Visited, rh.Visited)
		}
		teps1 += r1.TEPS / float64(len(roots))
		teps2 += r2.TEPS / float64(len(roots))
		tepsH += rh.TEPS / float64(len(roots))
		mb1 += float64(r1.CommBytes) / (1 << 20) / float64(len(roots))
		mb2 += float64(r2.CommBytes) / (1 << 20) / float64(len(roots))
		mbH += float64(rh.CommBytes) / (1 << 20) / float64(len(roots))
	}
	fmt.Printf("%-26s %12.3e %14.2f\n", "1-D top-down", teps1, mb1)
	fmt.Printf("%-26s %12.3e %14.2f\n", "2-D top-down (Buluc)", teps2, mb2)
	fmt.Printf("%-26s %12.3e %14.2f\n", "1-D hybrid (the paper)", tepsH, mbH)
	fmt.Printf("\n2-D cuts top-down communication %.1fx; the hybrid sidesteps it entirely.\n", mb1/mb2)
}
