package numabfs_test

import (
	"testing"

	"numabfs"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	const scale = 13
	cfg := numabfs.ScaledCluster(scale, scale+12).WithNodes(2)
	cfg.WeakNode = -1
	res, err := numabfs.Run(numabfs.Benchmark{
		Machine:  cfg,
		Policy:   numabfs.PPN8Bind,
		Params:   numabfs.Graph500Params(scale),
		Opts:     numabfs.DefaultOptions(),
		NumRoots: 2,
		Validate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.HarmonicTEPS <= 0 {
		t.Fatalf("TEPS = %g", res.HarmonicTEPS)
	}
}

func TestPublicRunnerAndValidate(t *testing.T) {
	const scale = 13
	cfg := numabfs.ScaledCluster(scale, scale+12).WithNodes(2)
	cfg.WeakNode = -1
	opts := numabfs.DefaultOptions()
	opts.Opt = numabfs.OptShareAll
	r, err := numabfs.NewRunner(cfg, numabfs.PPN8Bind, numabfs.Graph500Params(scale), opts)
	if err != nil {
		t.Fatal(err)
	}
	r.Setup()
	root := r.Params.Roots(1, r.HasEdgeGlobal)[0]
	res := r.RunRoot(root)
	if res.Visited <= 0 {
		t.Fatal("nothing visited")
	}
	if err := numabfs.Validate(r, root); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizationsImproveTEPS(t *testing.T) {
	// The paper's core claim, as a regression test: on a multi-node
	// cluster, the fully optimized configuration beats the ppn=1
	// baseline, and the bound ppn=8 mapping beats unbound placement.
	const scale = 14
	cfg := numabfs.ScaledCluster(scale, scale+12).WithNodes(4)
	cfg.WeakNode = -1
	params := numabfs.Graph500Params(scale)

	teps := func(pol numabfs.Policy, opt numabfs.OptLevel, g int64) float64 {
		o := numabfs.DefaultOptions()
		o.Opt = opt
		o.Granularity = g
		res, err := numabfs.Run(numabfs.Benchmark{
			Machine: cfg, Policy: pol, Params: params, Opts: o, NumRoots: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.HarmonicTEPS
	}

	base := teps(numabfs.PPN1Interleave, numabfs.OptOriginal, 64)
	bind := teps(numabfs.PPN8Bind, numabfs.OptOriginal, 64)
	best := teps(numabfs.PPN8Bind, numabfs.OptParAllgather, 256)

	if bind <= base {
		t.Errorf("binding (%.3e) did not beat interleave (%.3e)", bind, base)
	}
	if best <= bind {
		t.Errorf("full optimizations (%.3e) did not beat Original.ppn=8 (%.3e)", best, bind)
	}
	if best/base < 1.3 {
		t.Errorf("overall speedup %.2fx, want the paper-like >1.3x at this size", best/base)
	}
}
