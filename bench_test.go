// Top-level benchmarks: one per table and figure of the paper's
// evaluation, each regenerating the corresponding rows via the drivers in
// internal/experiments (printed with -v through b.Log on first run), plus
// micro-benchmarks of the hot substrate operations.
//
// The figure benches are heavyweight (a whole simulated-cluster sweep per
// iteration); run them as
//
//	go test -bench=Fig -benchtime=1x
//
// For the full paper-shaped sweep at larger scale use cmd/bfsbench.
package numabfs_test

import (
	"sync"
	"testing"

	"numabfs"
	"numabfs/internal/bitmap"
	"numabfs/internal/collective"
	"numabfs/internal/experiments"
	"numabfs/internal/machine"
	"numabfs/internal/mpi"
	"numabfs/internal/rmat"
)

// benchSpec sizes the figure benches: small enough for -benchtime=1x
// turnaround, same code paths as the full evaluation.
func benchSpec() experiments.Spec {
	return experiments.Spec{BaseScale: 13, Roots: 2, WeakNode: true}
}

// runFigure runs one experiment driver b.N times, logging the table once.
func runFigure(b *testing.B, fig func(experiments.Spec) (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := fig(benchSpec())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig3CoreScaling(b *testing.B)      { runFigure(b, experiments.Fig3) }
func BenchmarkFig4Bandwidth(b *testing.B)        { runFigure(b, experiments.Fig4) }
func BenchmarkFig6LeaderAllgather(b *testing.B)  { runFigure(b, experiments.Fig6) }
func BenchmarkFig9Overview(b *testing.B)         { runFigure(b, experiments.Fig9) }
func BenchmarkFig10Policies(b *testing.B)        { runFigure(b, experiments.Fig10) }
func BenchmarkFig11Breakdown(b *testing.B)       { runFigure(b, experiments.Fig11) }
func BenchmarkFig12WeakScalingComm(b *testing.B) { runFigure(b, experiments.Fig12) }
func BenchmarkFig13CommReduction(b *testing.B)   { runFigure(b, experiments.Fig13) }
func BenchmarkFig14CommProportion(b *testing.B)  { runFigure(b, experiments.Fig14) }
func BenchmarkFig15WeakScaling(b *testing.B)     { runFigure(b, experiments.Fig15) }
func BenchmarkFig16Granularity(b *testing.B)     { runFigure(b, experiments.Fig16) }
func BenchmarkAlgorithmComparison(b *testing.B)  { runFigure(b, experiments.AlgorithmComparison) }
func BenchmarkExt2DPartitioning(b *testing.B)    { runFigure(b, experiments.Ext2D) }
func BenchmarkExtCompression(b *testing.B)       { runFigure(b, experiments.ExtCompression) }
func BenchmarkAblationAllgather(b *testing.B)    { runFigure(b, experiments.AblationAllgather) }
func BenchmarkAblationCompression(b *testing.B)  { runFigure(b, experiments.AblationCompression) }
func BenchmarkAblationHybrid(b *testing.B)       { runFigure(b, experiments.AblationHybrid) }

// BenchmarkBFS2DRoot measures one 2-D partitioned BFS iteration.
func BenchmarkBFS2DRoot(b *testing.B) {
	const scale = 14
	cfg := numabfs.ScaledCluster(scale, scale+12).WithNodes(2)
	cfg.WeakNode = -1
	grid := numabfs.DefaultGrid(2 * cfg.SocketsPerNode)
	r, err := numabfs.NewRunner2D(cfg, numabfs.PPN8Bind, grid, numabfs.Graph500Params(scale))
	if err != nil {
		b.Fatal(err)
	}
	r.Setup()
	root := r.Params.Roots(1, r.HasEdgeGlobal)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := r.RunRoot(root)
		if res.Visited == 0 {
			b.Fatal("2-D BFS visited nothing")
		}
	}
}

// BenchmarkBFSRoot measures one full BFS iteration (host time) on a
// 2-node simulated cluster — the core end-to-end operation.
func BenchmarkBFSRoot(b *testing.B) {
	const scale = 14
	cfg := numabfs.ScaledCluster(scale, scale+12).WithNodes(2)
	cfg.WeakNode = -1
	opts := numabfs.DefaultOptions()
	opts.Opt = numabfs.OptParAllgather
	r, err := numabfs.NewRunner(cfg, numabfs.PPN8Bind, numabfs.Graph500Params(scale), opts)
	if err != nil {
		b.Fatal(err)
	}
	r.Setup()
	root := r.Params.Roots(1, r.HasEdgeGlobal)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := r.RunRoot(root)
		if res.Visited == 0 {
			b.Fatal("BFS visited nothing")
		}
	}
}

// BenchmarkRMATGeneration measures edge generation throughput.
func BenchmarkRMATGeneration(b *testing.B) {
	p := rmat.Graph500(20)
	b.ReportAllocs()
	var sink int64
	for i := 0; i < b.N; i++ {
		u, v := p.EdgeAt(int64(i))
		sink += u + v
	}
	_ = sink
}

// BenchmarkBitmapCheck measures the bottom-up inner loop's primitive:
// a summary check followed by an in_queue probe.
func BenchmarkBitmapCheck(b *testing.B) {
	const n = 1 << 20
	bm := bitmap.New(n)
	for i := int64(0); i < n; i += 97 {
		bm.Set(i)
	}
	sum := bitmap.NewSummary(n, 256)
	sum.Rebuild(bm)
	b.ResetTimer()
	var hits int
	for i := 0; i < b.N; i++ {
		u := int64(i*31) & (n - 1)
		if !sum.CoveredZero(u) && bm.Get(u) {
			hits++
		}
	}
	_ = hits
}

// BenchmarkBitmapAppendSetBits measures frontier extraction — the
// bottom-up -> top-down switch scans the owned in_queue segment into the
// vertex queue. With reused scratch this is allocation-free.
func BenchmarkBitmapAppendSetBits(b *testing.B) {
	const n = 1 << 20
	bm := bitmap.New(n)
	for i := int64(0); i < n; i += 97 {
		bm.Set(i)
	}
	queue := make([]int64, 0, n/97+1)
	b.SetBytes(n / 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		queue = bm.AppendSetBits(queue[:0], 0, n)
	}
	_ = queue
}

// BenchmarkSummaryRebuild measures the per-level summary reconstruction.
func BenchmarkSummaryRebuild(b *testing.B) {
	const n = 1 << 20
	bm := bitmap.New(n)
	for i := int64(0); i < n; i += 311 {
		bm.Set(i)
	}
	sum := bitmap.NewSummary(n, 64)
	b.SetBytes(n / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum.Rebuild(bm)
	}
}

// BenchmarkAllgatherRing measures the simulated 128-rank ring allgather
// (host time per collective, including the real data movement).
func BenchmarkAllgatherRing(b *testing.B) {
	cfg := machine.TableI()
	cfg.WeakNode = -1
	pl := machine.PlacementFor(cfg, machine.PPN8Bind)
	const words = 1 << 14
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := mpi.NewWorld(cfg, pl)
		g := collective.WorldGroup(w)
		l := collective.EvenLayout(words, g.Size())
		w.Run(func(p *mpi.Proc) {
			buf := make([]uint64, words)
			g.AllgatherRing(p, buf, l)
		})
	}
}

// BenchmarkVirtualSendRecv measures the rendezvous machinery itself.
func BenchmarkVirtualSendRecv(b *testing.B) {
	cfg := machine.TableI()
	cfg.Nodes = 2
	cfg.WeakNode = -1
	pl := machine.PlacementFor(cfg, machine.PPN8Bind)
	w := mpi.NewWorld(cfg, pl)
	b.ResetTimer()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := w.Proc(0)
		for i := 0; i < b.N; i++ {
			p.Send(1, i, 64, nil, 1)
		}
	}()
	p := w.Proc(1)
	for i := 0; i < b.N; i++ {
		p.Recv(0, i)
	}
	wg.Wait()
}
