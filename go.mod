module numabfs

go 1.22
